"""Stack frames and per-thread call stacks.

The CG collector ties every equilive block to a *dependent frame* (thesis
chapter 2).  Frames therefore carry:

* a globally unique ``frame_id`` (the thesis gives each frame "a unique ID
  number", section 3.1.2) used for statistics such as age-at-death;
* their ``depth`` within their thread's stack, which defines the *older than*
  order — within one thread, a lower depth pops later;
* ``cg_blocks``, the frame's list of dependent equilive blocks, maintained by
  the collector and drained in O(blocks) when the frame pops.

The synthetic **frame 0** of the paper (static variables, interned strings,
native escapees, thread-shared objects) is represented by a dedicated
:class:`StaticFrame` singleton per runtime, older than every real frame.
"""

from __future__ import annotations

from typing import Dict, List, Optional, TYPE_CHECKING

from .errors import IllegalStateError
from .heap import Handle
from .model import JMethod

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..core.equilive import EquiliveBlock


class Frame:
    """One method activation: locals, operand stack, and CG block list."""

    __slots__ = (
        "frame_id",
        "depth",
        "thread_id",
        "method",
        "locals",
        "stack",
        "pc",
        "cg_blocks",
        "popped",
    )

    def __init__(
        self,
        frame_id: int,
        depth: int,
        thread_id: int,
        method: Optional[JMethod],
        nlocals: int = 0,
    ) -> None:
        self.frame_id = frame_id
        self.depth = depth
        self.thread_id = thread_id
        self.method = method
        self.locals: List[object] = [None] * nlocals
        self.stack: List[object] = []
        self.pc = 0
        # Dict used as an insertion-ordered set of EquiliveBlock; the
        # collector inserts/removes blocks as dependence changes.
        self.cg_blocks: Dict["EquiliveBlock", None] = {}
        self.popped = False

    @property
    def is_static_frame(self) -> bool:
        return self.depth < 0

    def is_older_than(self, other: "Frame") -> bool:
        """True when this frame pops strictly after ``other``.

        Only meaningful for two frames of the same thread or when one side is
        the static frame; the collector pins cross-thread blocks static
        before any such comparison would be needed (section 3.3).
        """
        if self.is_static_frame:
            return not other.is_static_frame
        if other.is_static_frame:
            return False
        if self.thread_id != other.thread_id:
            raise IllegalStateError(
                "frame age comparison across threads (block should be static)"
            )
        return self.depth < other.depth

    def root_references(self) -> List[Handle]:
        """Live references held by this frame (locals + operand stack)."""
        refs = [v for v in self.locals if isinstance(v, Handle)]
        refs.extend(v for v in self.stack if isinstance(v, Handle))
        return refs

    def set_local(self, index: int, value: object) -> None:
        if index >= len(self.locals):
            self.locals.extend([None] * (index + 1 - len(self.locals)))
        self.locals[index] = value

    def add_root(self, value: Handle) -> int:
        """Append ``value`` as a new local slot; returns its index.

        Direct-drive mutators use this to make their Python-held references
        visible to the tracing collector's root scan.
        """
        self.locals.append(value)
        return len(self.locals) - 1

    def __repr__(self) -> str:
        name = self.method.qualified_name if self.method else "<synthetic>"
        return f"<Frame #{self.frame_id} d{self.depth} t{self.thread_id} {name}>"


class StaticFrame(Frame):
    """The paper's frame 0: never pops, older than everything."""

    def __init__(self) -> None:
        super().__init__(frame_id=0, depth=-1, thread_id=-1, method=None)

    def __repr__(self) -> str:
        return "<StaticFrame>"


class CallStack:
    """A thread's stack of frames, with global frame-id assignment."""

    def __init__(self, thread_id: int, id_source: "FrameIdSource") -> None:
        self.thread_id = thread_id
        self.frames: List[Frame] = []
        self._ids = id_source

    @property
    def depth(self) -> int:
        return len(self.frames)

    @property
    def current(self) -> Frame:
        if not self.frames:
            raise IllegalStateError("no active frame on this thread")
        return self.frames[-1]

    @property
    def caller(self) -> Optional[Frame]:
        return self.frames[-2] if len(self.frames) >= 2 else None

    def push(self, method: Optional[JMethod], nlocals: int = 0) -> Frame:
        frame = Frame(
            self._ids.next_id(), len(self.frames), self.thread_id, method, nlocals
        )
        self.frames.append(frame)
        return frame

    def pop(self) -> Frame:
        if not self.frames:
            raise IllegalStateError("pop from empty call stack")
        frame = self.frames.pop()
        frame.popped = True
        return frame

    def __iter__(self):
        return iter(self.frames)


class FrameIdSource:
    """Monotonic frame-id allocator shared by all threads of a runtime.

    Id 0 is reserved for the static frame, so real frames start at 1.
    """

    def __init__(self) -> None:
        self._next = 1

    def next_id(self) -> int:
        value = self._next
        self._next += 1
        return value

    @property
    def issued(self) -> int:
        return self._next - 1
