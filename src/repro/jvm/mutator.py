"""Direct-drive mutator API.

The SPEC-shaped workloads allocate tens of thousands of objects; driving
them through the bytecode interpreter would spend almost all the wall clock
in instruction dispatch.  :class:`Mutator` issues the *same runtime events*
(allocation, putfield/aastore contamination, putstatic pinning, areturn
promotion, frame pops, thread-sharing accesses, periodic-GC ticks) without
the dispatch — the GC code path is identical, only the program counter is
Python.

Root discipline mirrors the JVM's operand stack: a freshly allocated (or
explicitly ``keep``-ed) reference is pushed onto the current frame's operand
stack, making it visible to the tracing collector's root scan, and is
consumed from there the first time it is stored into the heap, returned, or
bound to a local.  Workloads that hold a reference across further operations
after consuming it must keep it reachable (a local slot or a heap path),
exactly like real bytecode.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, List, Optional, Union

from .errors import IllegalStateError
from .frames import Frame
from .heap import Handle
from .model import JClass, Program
from .runtime import Runtime
from .threads import JThread


class Mutator:
    """A thread-bound front end over :class:`~repro.jvm.runtime.Runtime`."""

    def __init__(self, runtime: Runtime, thread: Optional[JThread] = None) -> None:
        self.runtime = runtime
        self.thread = thread or runtime.main_thread

    # ------------------------------------------------------------------
    # Frames
    # ------------------------------------------------------------------

    @contextmanager
    def frame(self, name: str = "direct", nlocals: int = 0) -> Iterator[Frame]:
        """Enter a method activation; popping it fires the CG collection."""
        frame = self.runtime.push_frame(self.thread, None, nlocals=nlocals)
        try:
            yield frame
        finally:
            self.runtime.pop_frame(self.thread)

    @property
    def current_frame(self) -> Frame:
        return self.thread.stack.current

    @property
    def depth(self) -> int:
        return self.thread.stack.depth

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def new(self, cls: Union[str, JClass], length: Optional[int] = None) -> Handle:
        """Allocate; the result is temp-rooted on the operand stack."""
        self.tick()
        handle = self.runtime.allocate(cls, self.thread, length=length)
        self.current_frame.stack.append(handle)
        return handle

    def new_array(self, length: int) -> Handle:
        return self.new(Program.ARRAY, length=length)

    def new_string(self, contents: str) -> Handle:
        self.tick()
        handle = self.runtime.new_string(contents, self.thread)
        self.current_frame.stack.append(handle)
        return handle

    def intern(self, handle: Handle) -> Handle:
        self.tick()
        result = self.runtime.intern(handle)
        self._consume(handle)
        return result

    # ------------------------------------------------------------------
    # Heap access
    # ------------------------------------------------------------------

    def putfield(self, obj: Handle, name: str, value: object) -> None:
        self.tick()
        self.runtime.store_field(obj, name, value, self.thread)
        if isinstance(value, Handle):
            self._consume(value)

    def getfield(self, obj: Handle, name: str, keep: bool = False) -> object:
        """Read a field; ``keep=True`` temp-roots a reference result (use it
        when the caller will unlink the value from its container before the
        next potential GC point)."""
        self.tick()
        value = self.runtime.load_field(obj, name, self.thread)
        if keep and isinstance(value, Handle):
            self.current_frame.stack.append(value)
        return value

    def aastore(self, array: Handle, index: int, value: object) -> None:
        self.tick()
        self.runtime.store_element(array, index, value, self.thread)
        if isinstance(value, Handle):
            self._consume(value)

    def aaload(self, array: Handle, index: int, keep: bool = False) -> object:
        self.tick()
        value = self.runtime.load_element(array, index, self.thread)
        if keep and isinstance(value, Handle):
            self.current_frame.stack.append(value)
        return value

    def putstatic(self, key: str, value: object) -> None:
        self.tick()
        self.runtime.store_static(key, value)
        if isinstance(value, Handle):
            self._consume(value)

    def getstatic(self, key: str) -> object:
        self.tick()
        return self.runtime.load_static(key)

    def touch(self, handle: Handle) -> None:
        """A bare read access (drives the thread-sharing detector)."""
        self.tick()
        self.runtime.access(handle, self.thread)

    # ------------------------------------------------------------------
    # Locals and returns
    # ------------------------------------------------------------------

    def set_local(self, index: int, value: object) -> None:
        """Bind a local slot (a durable root for the tracing collector)."""
        self.tick()
        frame = self.current_frame
        old = frame.locals[index] if index < len(frame.locals) else None
        frame.set_local(index, value)
        if isinstance(value, Handle):
            self._consume(value)
        return old

    def get_local(self, index: int) -> object:
        frame = self.current_frame
        return frame.locals[index] if index < len(frame.locals) else None

    def root(self, value: Handle) -> int:
        """Append ``value`` as a new durable local; returns the slot index."""
        self.tick()
        index = self.current_frame.add_root(value)
        self._consume(value)
        return index

    def areturn(self, value: Handle) -> Handle:
        """Return ``value`` from the current frame (fires the CG event).

        Must be called while the returning frame is still current — i.e.
        just before leaving the ``with mutator.frame()`` block.  The value
        is re-rooted on the caller's operand stack, like a real ``areturn``.
        """
        if self.depth < 1:
            raise IllegalStateError("areturn with no active frame")
        self.tick()
        value.check_live()
        self.runtime.return_reference(value, self.thread)
        self._consume(value)
        caller = self.thread.stack.caller
        if caller is not None:
            caller.stack.append(value)
        return value

    def consume_from_caller(self, value: Handle) -> None:
        """Pop a just-returned value off the current frame's operand stack."""
        self._consume(value)

    def drop(self, value: Handle) -> None:
        """Discard a temp-rooted reference without storing it anywhere."""
        self.tick()
        self._consume(value)

    def native_escape(self, handle: Handle) -> None:
        """Hand ``handle`` to (simulated) native code: JNI-pins it and, with
        CG enabled, pins its equilive block to frame 0 (section 3.3)."""
        self.tick()
        if self.runtime.collector is not None:
            self.runtime.collector.on_native_escape(handle)
        self.runtime.natives.pin(handle)
        self._consume(handle)

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------

    def spawn(self, name: Optional[str] = None) -> "Mutator":
        """Create a new thread and return a mutator bound to it."""
        return Mutator(self.runtime, self.runtime.new_thread(name))

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def tick(self, n: int = 1) -> None:
        """Charge mutator work (and give the periodic collector its chance)."""
        self.runtime.tick(n)

    def _consume(self, value: Handle) -> None:
        """Remove one occurrence of ``value`` from the operand stack, if any."""
        stack = self.current_frame.stack
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is value:
                del stack[i]
                return
