"""Direct-drive mutator API.

The SPEC-shaped workloads allocate tens of thousands of objects; driving
them through the bytecode interpreter would spend almost all the wall clock
in instruction dispatch.  :class:`Mutator` issues the *same runtime events*
(allocation, putfield/aastore contamination, putstatic pinning, areturn
promotion, frame pops, thread-sharing accesses, periodic-GC ticks) without
the dispatch — the GC code path is identical, only the program counter is
Python.

Root discipline mirrors the JVM's operand stack: a freshly allocated (or
explicitly ``keep``-ed) reference is pushed onto the current frame's operand
stack, making it visible to the tracing collector's root scan, and is
consumed from there the first time it is stored into the heap, returned, or
bound to a local.  Workloads that hold a reference across further operations
after consuming it must keep it reachable (a local slot or a heap path),
exactly like real bytecode.
"""

from __future__ import annotations

from typing import List, Optional, Union

from .errors import IllegalStateError
from .frames import Frame
from .heap import Handle
from .model import JClass, Program
from .runtime import Runtime
from .threads import JThread


class _FrameScope:
    """Plain context manager for :meth:`Mutator.frame`.

    A hand-rolled class instead of ``@contextmanager`` because workloads
    enter thousands of frames: the generator protocol costs two extra
    calls (``next`` + ``StopIteration`` plumbing) per activation.  One
    scope instance is reused per mutator — safe even for nested ``with``
    blocks because ``__enter__`` reads ``frame`` before any inner
    :meth:`Mutator.frame` call can overwrite it, and ``__exit__`` always
    pops the *current* (innermost) frame.
    """

    __slots__ = ("_runtime", "_thread", "frame")

    def __init__(self, runtime: Runtime, thread: JThread) -> None:
        self._runtime = runtime
        self._thread = thread
        self.frame: Optional[Frame] = None

    def __enter__(self) -> Frame:
        return self.frame

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._runtime.pop_frame(self._thread)
        return False


class Mutator:
    """A thread-bound front end over :class:`~repro.jvm.runtime.Runtime`."""

    __slots__ = (
        "runtime", "thread", "_stack", "_scope", "tick", "_allocate",
        "_store_field", "_load_field", "_store_element", "_load_element",
    )

    def __init__(self, runtime: Runtime, thread: Optional[JThread] = None) -> None:
        self.runtime = runtime
        self.thread = thread or runtime.main_thread
        #: The thread's call stack (its ``frames`` list object is stable
        #: for the thread's lifetime, so hot paths index it directly).
        self._stack = self.thread.stack
        self._scope = _FrameScope(runtime, self.thread)
        #: Instance-bound fast paths: these resolve straight to the runtime
        #: methods, skipping one delegation frame per event.  ``tick`` in
        #: particular fires on every mutator operation.
        self.tick = runtime.tick
        self._allocate = runtime.allocate
        self._store_field = runtime.store_field
        self._load_field = runtime.load_field
        self._store_element = runtime.store_element
        self._load_element = runtime.load_element

    # ------------------------------------------------------------------
    # Frames
    # ------------------------------------------------------------------

    def frame(self, name: str = "direct", nlocals: int = 0) -> _FrameScope:
        """Enter a method activation; popping it fires the CG collection."""
        scope = self._scope
        scope.frame = self.runtime.push_frame(self.thread, None, nlocals=nlocals)
        return scope

    @property
    def current_frame(self) -> Frame:
        return self._stack.current

    @property
    def depth(self) -> int:
        return self.thread.stack.depth

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def new(self, cls: Union[str, JClass], length: Optional[int] = None) -> Handle:
        """Allocate; the result is temp-rooted on the operand stack."""
        self.tick()
        handle = self._allocate(cls, self.thread, length)
        self._stack.frames[-1].stack.append(handle)
        return handle

    def new_array(self, length: int) -> Handle:
        return self.new(Program.ARRAY, length=length)

    def new_string(self, contents: str) -> Handle:
        self.tick()
        handle = self.runtime.new_string(contents, self.thread)
        self._stack.frames[-1].stack.append(handle)
        return handle

    def intern(self, handle: Handle) -> Handle:
        self.tick()
        result = self.runtime.intern(handle)
        self._consume(handle)
        return result

    # ------------------------------------------------------------------
    # Heap access
    # ------------------------------------------------------------------

    def putfield(self, obj: Handle, name: str, value: object) -> None:
        self.tick()
        self._store_field(obj, name, value, self.thread)
        if isinstance(value, Handle):
            self._consume(value)

    def getfield(self, obj: Handle, name: str, keep: bool = False) -> object:
        """Read a field; ``keep=True`` temp-roots a reference result (use it
        when the caller will unlink the value from its container before the
        next potential GC point)."""
        self.tick()
        value = self._load_field(obj, name, self.thread)
        if keep and isinstance(value, Handle):
            self._stack.frames[-1].stack.append(value)
        return value

    def aastore(self, array: Handle, index: int, value: object) -> None:
        self.tick()
        self._store_element(array, index, value, self.thread)
        if isinstance(value, Handle):
            self._consume(value)

    def aaload(self, array: Handle, index: int, keep: bool = False) -> object:
        self.tick()
        value = self._load_element(array, index, self.thread)
        if keep and isinstance(value, Handle):
            self._stack.frames[-1].stack.append(value)
        return value

    def putstatic(self, key: str, value: object) -> None:
        self.tick()
        self.runtime.store_static(key, value)
        if isinstance(value, Handle):
            self._consume(value)

    def getstatic(self, key: str) -> object:
        self.tick()
        return self.runtime.load_static(key)

    def touch(self, handle: Handle) -> None:
        """A bare read access (drives the thread-sharing detector)."""
        self.tick()
        self.runtime.access(handle, self.thread)

    # ------------------------------------------------------------------
    # Locals and returns
    # ------------------------------------------------------------------

    def set_local(self, index: int, value: object) -> None:
        """Bind a local slot (a durable root for the tracing collector)."""
        self.tick()
        frame = self._stack.frames[-1]
        old = frame.locals[index] if index < len(frame.locals) else None
        frame.set_local(index, value)
        if isinstance(value, Handle):
            self._consume(value)
        return old

    def get_local(self, index: int) -> object:
        frame = self._stack.frames[-1]
        return frame.locals[index] if index < len(frame.locals) else None

    def root(self, value: Handle) -> int:
        """Append ``value`` as a new durable local; returns the slot index."""
        self.tick()
        index = self._stack.frames[-1].add_root(value)
        self._consume(value)
        return index

    def areturn(self, value: Handle) -> Handle:
        """Return ``value`` from the current frame (fires the CG event).

        Must be called while the returning frame is still current — i.e.
        just before leaving the ``with mutator.frame()`` block.  The value
        is re-rooted on the caller's operand stack, like a real ``areturn``.
        """
        frames = self._stack.frames
        if not frames:
            raise IllegalStateError("areturn with no active frame")
        self.tick()
        if value.freed:
            value.check_live()
        self.runtime.return_reference(value, self.thread)
        self._consume(value)
        if len(frames) >= 2:
            frames[-2].stack.append(value)
        return value

    def consume_from_caller(self, value: Handle) -> None:
        """Pop a just-returned value off the current frame's operand stack."""
        self._consume(value)

    def drop(self, value: Handle) -> None:
        """Discard a temp-rooted reference without storing it anywhere."""
        self.tick()
        self._consume(value)

    def native_escape(self, handle: Handle) -> None:
        """Hand ``handle`` to (simulated) native code: JNI-pins it and, with
        CG enabled, pins its equilive block to frame 0 (section 3.3)."""
        self.tick()
        if self.runtime.collector is not None:
            self.runtime.collector.on_native_escape(handle)
        self.runtime.natives.pin(handle)
        self._consume(handle)

    # ------------------------------------------------------------------
    # Threads
    # ------------------------------------------------------------------

    def spawn(self, name: Optional[str] = None) -> "Mutator":
        """Create a new thread and return a mutator bound to it."""
        return Mutator(self.runtime, self.runtime.new_thread(name))

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------

    def _consume(self, value: Handle) -> None:
        """Remove one occurrence of ``value`` from the operand stack, if any."""
        stack = self._stack.frames[-1].stack
        # Fast path: the consumed reference is almost always on top.
        if stack and stack[-1] is value:
            stack.pop()
            return
        for i in range(len(stack) - 2, -1, -1):
            if stack[i] is value:
                del stack[i]
                return
