"""Metrics registry: one snapshot/delta-able view of a runtime's counters.

Before this module every consumer read raw attributes from three places —
``collector.stats`` (a ``CGStats``), ``heap``/``heap.free_list``, and
``tracing.work`` (a ``GCWork``) — and each figure generator, benchmark, and
``BENCH_*.json`` row did its own ad-hoc aggregation.  The registry is the
single source of truth: ``collect_runtime_metrics`` folds all three (plus
union-find work, recycle-list state, and phase-profile samples) into typed
namespaced metrics:

* **counters** — monotone totals (``cg.objects_popped``, ``gc.mark_visits``)
* **gauges** — instantaneous levels (``heap.live_words``, ``heap.occupancy``)
* **histograms** — bucketed distributions (``cg.age_hist``,
  ``profile.depth_seconds``)

Snapshots are plain dicts, so ``delta`` (this window minus the last) and
JSONL emission are trivial; the harness's rows and benchmark JSON read from
here instead of reaching into subsystem internals.
"""

from __future__ import annotations

import dataclasses
import json
from collections import Counter
from typing import Dict, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..jvm.runtime import Runtime


class MetricsRegistry:
    """Counters, gauges, and histograms under dotted names."""

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> int:
        """Increment a counter (created at 0)."""
        value = self.counters.get(name, 0) + amount
        self.counters[name] = value
        return value

    def set_counter(self, name: str, value: int) -> None:
        """Set a counter outright (used when folding in finished totals)."""
        self.counters[name] = int(value)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, bucket: object, count: int = 1) -> None:
        """Add ``count`` observations to ``bucket`` of histogram ``name``."""
        hist = self.histograms.setdefault(name, {})
        key = str(bucket)
        hist[key] = hist.get(key, 0) + count

    def merge_histogram(self, name: str, buckets: Dict) -> None:
        for bucket, count in buckets.items():
            self.observe(name, bucket, int(count))

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Dict]:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }

    def snapshot(self) -> Dict[str, float]:
        """Flat name -> value view of counters and gauges (histograms omitted)."""
        flat: Dict[str, float] = {}
        flat.update(self.counters)
        flat.update(self.gauges)
        return flat

    def delta(self, earlier: Dict[str, float]) -> Dict[str, float]:
        """Change of every counter/gauge since an earlier :meth:`snapshot`."""
        now = self.snapshot()
        out: Dict[str, float] = {}
        for name, value in now.items():
            change = value - earlier.get(name, 0)
            if change:
                out[name] = change
        for name in earlier:
            if name not in now:
                out[name] = -earlier[name]
        return out

    def to_json_line(self, **labels: object) -> str:
        """One JSONL record: labels + the full typed dump."""
        record: Dict[str, object] = dict(labels)
        record.update(self.to_dict())
        return json.dumps(record, sort_keys=True)

    @staticmethod
    def from_dict(data: Dict[str, Dict]) -> "MetricsRegistry":
        registry = MetricsRegistry()
        registry.counters.update(
            {k: int(v) for k, v in data.get("counters", {}).items()}
        )
        registry.gauges.update(
            {k: float(v) for k, v in data.get("gauges", {}).items()}
        )
        for name, buckets in data.get("histograms", {}).items():
            # setdefault first: a histogram serialized with zero buckets
            # must survive the round trip (merge alone would drop it and
            # to_dict -> from_dict -> to_dict would not be the identity).
            registry.histograms.setdefault(name, {})
            registry.merge_histogram(name, buckets)
        return registry


def collect_runtime_metrics(
    runtime: "Runtime", registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Fold a runtime's subsystem counters into one registry.

    Safe to call mid-run (for sampling) or after it (for final rows):
    everything here is a read.
    """
    reg = registry or MetricsRegistry()

    reg.set_counter("vm.ops", runtime.ops)

    # --- per-opcode histogram (count_opcodes runs only) -------------------
    # getattr, not the lazy property: collecting metrics must not force the
    # creation of an interpreter the run never used.
    interp = getattr(runtime, "_interpreter", None)
    if interp is not None and getattr(interp, "count_ops", False):
        op_hist = interp.opcode_histogram()
        if op_hist:
            reg.merge_histogram("vm.op", op_hist)

    # --- compile budget (always-on interpreter accounting) ----------------
    if interp is not None:
        reg.set_counter("vm.compile.methods", interp.methods_compiled)
        reg.set_counter("vm.compile.codegenned", interp.methods_codegenned)
        reg.set_counter("vm.compile.promoted", interp.methods_promoted)
        reg.set_counter("vm.compile.recompiled", interp.methods_recompiled)
        reg.set_counter("vm.compile.cache_hits", interp.codegen_cache_hits)
        reg.set_counter("vm.compile.cache_misses",
                        interp.codegen_cache_misses)
        reg.set_gauge("vm.compile.ms", (interp.compile_seconds
                                        + interp.codegen_seconds) * 1000.0)

    # --- heap + allocator -------------------------------------------------
    heap = runtime.heap
    for name, value in heap.occupancy().items():
        reg.set_gauge(f"heap.{name}", value)
    reg.set_counter("heap.objects_created", heap.objects_created)
    reg.set_counter("heap.words_allocated", heap.words_allocated)
    reg.set_counter("heap.words_freed", heap.bytes_freed)
    free_list = heap.free_list
    reg.set_counter("alloc.search_steps", free_list.search_steps)
    reg.set_counter("alloc.allocs", free_list.allocs)
    reg.set_counter("alloc.frees", free_list.frees)

    # --- tracing collector ------------------------------------------------
    work = runtime.tracing.work
    for fld in dataclasses.fields(work):
        reg.set_counter(f"gc.{fld.name}", getattr(work, fld.name))

    # --- CG collector -----------------------------------------------------
    collector = runtime.collector
    if collector is not None:
        stats = collector.stats
        for fld in dataclasses.fields(stats):
            value = getattr(stats, fld.name)
            if isinstance(value, Counter):
                reg.merge_histogram(f"cg.{fld.name}", value)
            else:
                reg.set_counter(f"cg.{fld.name}", value)
        ds = collector.equilive.ds
        reg.set_counter("cg.uf_finds", ds.finds)
        reg.set_counter("cg.uf_unions", ds.unions)
        reg.set_gauge("cg.blocks_live", collector.equilive.block_count())
        reg.set_gauge("cg.recycle_parked_words", collector.recycle.parked_words)
        reg.set_gauge("cg.recycle_parked_objects", len(collector.recycle))

    # --- fault injection / recovery cascade -------------------------------
    # Only folded when nonzero, so a clean run's metrics dict is unchanged.
    fault_stats = getattr(runtime, "fault_stats", None)
    if fault_stats:
        for name in sorted(fault_stats):
            reg.set_counter(f"fault.{name}", fault_stats[name])

    # --- tracer + profiler (observability observing itself) ---------------
    tracer = runtime.tracer
    if tracer.enabled:
        reg.set_counter("trace.emitted", tracer.emitted)
        reg.set_counter("trace.dropped", tracer.dropped)
    profiler = runtime.profiler
    if profiler.enabled:
        for phase, seconds in profiler.seconds.items():
            reg.set_gauge(f"profile.{phase}_s", seconds)
            reg.set_counter(f"profile.{phase}_samples", profiler.calls[phase])
        depth_hist = {
            depth: int(seconds * 1e9)
            for depth, seconds in sorted(profiler.depth_seconds.items())
        }
        if depth_hist:
            reg.merge_histogram("profile.depth_ns", depth_hist)
    return reg
