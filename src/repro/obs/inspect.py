"""``python -m repro inspect`` — render live state of in-flight runs.

Reads the heartbeat spool written by :mod:`repro.obs.heartbeat` and
renders it, from a *different* process than the one running the VM — the
out-of-process inspection capability CPython grew for remote frame-stack
reading, here built on spooled snapshots instead of memory peeking (the
snapshots already carry the frame stacks).

Three views:

* ``repro inspect PID`` / ``repro inspect PATH`` — the latest snapshot of
  one run: heap occupancy, equilive block census, recycle census, frame
  stacks, headline metrics.  ``--watch`` polls and re-renders whenever a
  new snapshot lands (``--count N`` stops after N renders).
* ``repro inspect`` / ``repro inspect --fleet [DIR]`` — a grid-wide
  rollup over every run file in the spool: per-cell progress (labels,
  seq, ops, heap pressure, live/done/stale), quarantine records written
  by the parallel harness, and aggregate heap pressure.
* ``--json`` on either view emits the structured form instead of text.

Everything here is read-only and tolerant: a torn line, a file pruned
mid-read, or an empty spool renders as "no data", never a traceback.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .heartbeat import default_spool_dir, run_file_pid

#: A run whose spool went quiet for this many seconds is presumed dead
#: (crashed or stopped without a final beat).  Advisory, like all
#: wall-clock handling here.
DEFAULT_STALE_AFTER = 10.0


# ---------------------------------------------------------------------------
# Spool reading
# ---------------------------------------------------------------------------

def read_snapshots(path: "os.PathLike[str]") -> List[Dict]:
    """Every parseable snapshot in a run file, oldest first.

    Tolerates a missing file (pruned between listing and reading) and
    torn/partial lines (the writer is atomic, but be lenient anyway).
    """
    snapshots: List[Dict] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict):
                    snapshots.append(record)
    except OSError:
        return []
    return snapshots


def latest_snapshot(path: "os.PathLike[str]") -> Optional[Dict]:
    snapshots = read_snapshots(path)
    return snapshots[-1] if snapshots else None


def discover_runs(spool: Path) -> List[Path]:
    """All run files in the spool, most recently modified last."""
    try:
        runs = [p for p in spool.glob("run-*.jsonl")
                if run_file_pid(p) is not None]
    except OSError:
        return []
    def mtime(p: Path) -> float:
        try:
            return p.stat().st_mtime
        except OSError:
            return 0.0
    return sorted(runs, key=mtime)


def discover_pools(spool: Path) -> List[Dict]:
    """``pool-<pid>.json`` status files published by the worker pool.

    One per :class:`~repro.harness.pool.WorkerPool` (and hence per
    ``repro serve`` instance) spooling into this directory: worker pids
    and states, queue depth, steal/replacement counters.
    """
    records: List[Dict] = []
    try:
        paths = sorted(spool.glob("pool-*.json"))
    except OSError:
        return []
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            continue
        if isinstance(record, dict) and record.get("kind") == "pool":
            record["path"] = str(path)
            records.append(record)
    return records


def discover_quarantine(spool: Path) -> List[Dict]:
    """Quarantine records the parallel harness spooled (see figures.py)."""
    records: List[Dict] = []
    try:
        paths = sorted(spool.glob("quarantine-*.json"))
    except OSError:
        return []
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            continue
        if isinstance(record, dict):
            records.append(record)
    return records


def resolve_target(target: str, spool: Path) -> Optional[Path]:
    """Map a PID or path argument to one run file (newest wins for PIDs)."""
    if target.isdigit():
        pid = int(target)
        mine = [p for p in discover_runs(spool) if run_file_pid(p) == pid]
        return mine[-1] if mine else None
    path = Path(target)
    if path.is_file():
        return path
    return None


# ---------------------------------------------------------------------------
# Single-run rendering
# ---------------------------------------------------------------------------

def _cell_of(snapshot: Dict) -> str:
    labels = snapshot.get("labels") or {}
    if {"workload", "size", "system"} <= set(labels):
        return f"{labels['workload']}:{labels['size']}:{labels['system']}"
    return "?"


def _top_counters(snapshot: Dict, n: int = 6) -> List[Tuple[str, int]]:
    counters = (snapshot.get("metrics") or {}).get("counters") or {}
    wanted = ("cg.objects_popped", "cg.objects_created", "cg.union_events",
              "gc.cycles", "gc.objects_collected", "alloc.search_steps")
    picked = [(k, int(counters[k])) for k in wanted if k in counters]
    return picked[:n]


def render_snapshot(snapshot: Dict, path: Optional[Path] = None) -> str:
    """One run's latest state as terminal text."""
    heap = snapshot.get("heap") or {}
    lines = []
    uptime = snapshot.get("uptime_s")
    lines.append(
        f"run pid={snapshot.get('pid', '?')} cell={_cell_of(snapshot)}"
        f" seq={snapshot.get('seq', '?')} phase={snapshot.get('phase', '?')}"
        f" ops={snapshot.get('ops', '?')}"
        + (f" uptime={uptime:.2f}s" if isinstance(uptime, (int, float))
           else "")
        + (f"  [{path}]" if path is not None else "")
    )
    if heap:
        cap = heap.get("capacity_words", 0) or 0
        live = heap.get("live_words", 0) or 0
        occupancy = 100.0 * heap.get("occupancy", 0.0)
        lines.append(
            f"  heap: {occupancy:5.1f}% occupied"
            f" ({int(live)}/{int(cap)} words,"
            f" peak {int(heap.get('peak_live_words', 0))},"
            f" frag {heap.get('fragmentation', 0.0):.2f},"
            f" {int(heap.get('live_objects', 0))} objects,"
            f" allocator {snapshot.get('allocator', '?')})"
        )
    equilive = snapshot.get("equilive")
    recycle = snapshot.get("recycle")
    if equilive:
        lines.append(
            f"  blocks: {equilive.get('blocks', 0)} live"
            f" ({equilive.get('static_blocks', 0)} static,"
            f" largest {equilive.get('largest_block', 0)},"
            f" {equilive.get('live_objects', 0)} objects)"
            + (f" · recycle: {recycle.get('parked_objects', 0)} parked"
               f" ({recycle.get('parked_words', 0)} words)"
               if recycle else "")
        )
    for stack in snapshot.get("frames") or []:
        frames = stack.get("frames") or []
        trail = " > ".join(
            str(f.get("method") or f"frame#{f.get('frame_id')}")
            for f in frames[-4:]
        )
        lines.append(
            f"  thread {stack.get('thread', '?')}: depth {len(frames)}"
            + (f" — {trail}" if trail else " — idle")
        )
    fault_stats = snapshot.get("fault_stats") or {}
    if fault_stats:
        folded = ", ".join(f"{k}={v}" for k, v in sorted(fault_stats.items()))
        lines.append(f"  faults: {folded}")
    requests = snapshot.get("requests") or {}
    if requests:
        req_ms = requests.get("request_ms") or {}
        pause_ms = requests.get("pause_ms") or {}
        lines.append(
            f"  requests: {requests.get('requests', 0)} served"
            f" — p50 {req_ms.get('p50_ms', 0.0):.3f}ms"
            f" p99 {req_ms.get('p99_ms', 0.0):.3f}ms"
            f" p999 {req_ms.get('p999_ms', 0.0):.3f}ms"
            f" max {req_ms.get('max_ms', 0.0):.3f}ms"
            f" · pause p99 {pause_ms.get('p99_ms', 0.0):.3f}ms"
            f" ({requests.get('pause_share_pct', 0.0):.1f}% of request time)"
        )
    latency = snapshot.get("latency") or {}
    for phase, dist in sorted(latency.items()):
        lines.append(
            f"  latency {phase}: p50 {dist.get('p50_ms', 0.0):.3f}ms"
            f" p99 {dist.get('p99_ms', 0.0):.3f}ms"
            f" max {dist.get('max_ms', 0.0):.3f}ms"
            f" ({dist.get('samples', 0)} samples,"
            f" window {dist.get('window', 0)})"
        )
    top = _top_counters(snapshot)
    if top:
        lines.append(
            "  metrics: " + ", ".join(f"{k}={v}" for k, v in top)
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Fleet rollup
# ---------------------------------------------------------------------------

def fleet_rollup(spool: Path,
                 stale_after: float = DEFAULT_STALE_AFTER) -> Dict:
    """Grid-wide view over every run file in the spool directory."""
    runs: List[Dict] = []
    now = time.time()
    for path in discover_runs(spool):
        snapshot = latest_snapshot(path)
        if snapshot is None:
            continue
        try:
            age = max(0.0, now - path.stat().st_mtime)
        except OSError:
            age = 0.0
        if snapshot.get("phase") == "final":
            status = "done"
        elif age > stale_after:
            status = "stale"
        else:
            status = "live"
        heap = snapshot.get("heap") or {}
        runs.append({
            "path": str(path),
            "pid": snapshot.get("pid", run_file_pid(path)),
            "cell": _cell_of(snapshot),
            "labels": snapshot.get("labels") or {},
            "seq": snapshot.get("seq"),
            "ops": snapshot.get("ops"),
            "phase": snapshot.get("phase"),
            "status": status,
            "age_s": round(age, 3),
            "heap_live_words": heap.get("live_words", 0.0),
            "heap_capacity_words": heap.get("capacity_words", 0.0),
            "heap_occupancy": heap.get("occupancy", 0.0),
        })
    quarantine = discover_quarantine(spool)
    pools = discover_pools(spool)
    active = [r for r in runs if r["status"] != "done"]
    live_words = sum(r["heap_live_words"] for r in active)
    capacity = sum(r["heap_capacity_words"] for r in active)
    return {
        "spool": str(spool),
        "runs": runs,
        "quarantine": quarantine,
        "pools": pools,
        "aggregate": {
            "runs": len(runs),
            "live": sum(1 for r in runs if r["status"] == "live"),
            "done": sum(1 for r in runs if r["status"] == "done"),
            "stale": sum(1 for r in runs if r["status"] == "stale"),
            "quarantined": len(quarantine),
            "workers": sorted({r["pid"] for r in runs
                               if r["pid"] is not None}),
            "live_words": live_words,
            "capacity_words": capacity,
            "heap_pressure": (live_words / capacity) if capacity else 0.0,
        },
    }


def render_fleet(rollup: Dict) -> str:
    agg = rollup["aggregate"]
    lines = [
        f"fleet: {agg['runs']} run(s) in {rollup['spool']}"
        f" — {agg['live']} live, {agg['done']} done, {agg['stale']} stale,"
        f" {agg['quarantined']} quarantined,"
        f" {len(agg['workers'])} worker(s)"
    ]
    for pool in rollup.get("pools", []):
        workers = pool.get("workers") or []
        busy = sum(1 for w in workers if w.get("state") == "busy")
        lines.append(
            f"  pool pid={pool.get('pid', '?')} [{pool.get('phase', '?')}]:"
            f" {len(workers)} worker(s) ({busy} busy),"
            f" {pool.get('queued', 0)} queued,"
            f" {pool.get('completed', 0)} done,"
            f" {pool.get('failed', 0)} failed,"
            f" {pool.get('steals', 0)} steal(s),"
            f" {pool.get('replaced', 0)} replaced"
        )
        for w in workers:
            cell = f" ← {w['cell']}" if w.get("cell") else ""
            lines.append(
                f"    worker {w.get('id', '?')} pid={w.get('pid', '?')}"
                f" {w.get('state', '?')}"
                f" ({w.get('jobs_done', 0)} jobs){cell}"
            )
    if rollup["runs"]:
        header = (f"  {'cell':24} {'pid':>7} {'seq':>5} {'ops':>10}"
                  f" {'heap%':>6} {'status':>6}")
        lines.append(header)
        for run in rollup["runs"]:
            lines.append(
                f"  {run['cell']:24} {str(run['pid']):>7}"
                f" {str(run['seq']):>5} {str(run['ops']):>10}"
                f" {100.0 * (run['heap_occupancy'] or 0.0):6.1f}"
                f" {run['status']:>6}"
            )
    for record in rollup["quarantine"]:
        lines.append(
            f"  [quarantine] {record.get('cell', '?')} -> "
            f"{record.get('site', '?')}/{record.get('kind', '?')}: "
            f"{record.get('message', '')}"
        )
    if agg["capacity_words"]:
        lines.append(
            f"  aggregate heap pressure:"
            f" {int(agg['live_words'])}/{int(agg['capacity_words'])} words"
            f" ({100.0 * agg['heap_pressure']:.1f}%) over active runs"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro inspect",
        description="Render live heartbeat snapshots of in-flight runs.",
    )
    parser.add_argument(
        "target", nargs="?",
        help="a PID (latest run of that process) or a spool file path; "
             "omitted = fleet view of the spool directory",
    )
    parser.add_argument(
        "--spool", metavar="DIR", default=None,
        help="spool directory (default: $REPRO_SPOOL or <tmp>/repro-spool)",
    )
    parser.add_argument(
        "--fleet", action="store_true",
        help="force the grid-wide rollup view",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the structured form instead of text",
    )
    parser.add_argument(
        "--watch", action="store_true",
        help="poll and re-render when a new snapshot lands",
    )
    parser.add_argument(
        "--interval", type=float, default=0.5, metavar="S",
        help="--watch poll interval in seconds (default 0.5)",
    )
    parser.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="stop --watch after N renders (default: until interrupted)",
    )
    parser.add_argument(
        "--timeout", type=float, default=30.0, metavar="S",
        help="--watch gives up after S seconds with no new snapshot "
             "(default 30)",
    )
    parser.add_argument(
        "--stale-after", type=float, default=DEFAULT_STALE_AFTER,
        metavar="S",
        help="fleet view marks runs quiet for S seconds as stale "
             f"(default {DEFAULT_STALE_AFTER:g})",
    )
    return parser


def _emit_single(path: Path, as_json: bool) -> bool:
    snapshot = latest_snapshot(path)
    if snapshot is None:
        return False
    if as_json:
        print(json.dumps(snapshot, sort_keys=True))
    else:
        print(render_snapshot(snapshot, path=path))
    return True


def _watch_single(target: str, spool: Path, args) -> int:
    """Poll ``target``, rendering each time a new (path, seq) appears."""
    rendered = 0
    last: Optional[Tuple[str, object]] = None
    deadline = time.time() + args.timeout
    while args.count is None or rendered < args.count:
        path = resolve_target(target, spool)
        snapshot = latest_snapshot(path) if path is not None else None
        if snapshot is not None:
            key = (str(path), snapshot.get("seq"))
            if key != last:
                last = key
                rendered += 1
                if args.as_json:
                    print(json.dumps(snapshot, sort_keys=True), flush=True)
                else:
                    print(render_snapshot(snapshot, path=path), flush=True)
                deadline = time.time() + args.timeout
                continue
        if time.time() > deadline:
            print(f"[inspect] no new snapshot for {args.timeout:g}s; "
                  f"giving up", file=sys.stderr)
            return 0 if rendered else 1
        time.sleep(args.interval)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    spool = Path(args.spool) if args.spool else default_spool_dir()

    fleet = args.fleet or args.target is None or (
        not str(args.target).isdigit() and Path(args.target).is_dir()
    )
    if fleet:
        spool_arg = args.target if (
            args.target and Path(args.target).is_dir()
        ) else spool
        count = 0
        while True:
            rollup = fleet_rollup(Path(spool_arg),
                                  stale_after=args.stale_after)
            if args.as_json:
                print(json.dumps(rollup, sort_keys=True), flush=True)
            else:
                print(render_fleet(rollup), flush=True)
            count += 1
            if not args.watch or (args.count is not None
                                  and count >= args.count):
                return 0
            time.sleep(args.interval)

    if args.watch:
        return _watch_single(args.target, spool, args)

    path = resolve_target(args.target, spool)
    if path is None:
        print(f"[inspect] no spool file for {args.target!r} under {spool}",
              file=sys.stderr)
        return 1
    if not _emit_single(path, args.as_json):
        print(f"[inspect] no parseable snapshot in {path}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
