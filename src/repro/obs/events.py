"""Event tracing: a bounded ring buffer of typed collector/VM events.

The thesis instruments Sun's interpreter at exactly the points where CG
learns something about an object's lifetime (section 3.1.3).  The tracer
records those same points as a replayable timeline, which is what the
related liveness work (Karkare et al.) uses to measure *excess retention*:
for any object you can read off when CG learned of it (``new``), every
merge that coarsened its lifetime (``union``), the promotion/pinning that
anchored it (``promote``/``pin``), and the frame pop that reclaimed it
(``frame_pop``/``block_collect``).

Design constraints:

* **Bounded** — a :class:`Tracer` holds at most ``capacity`` events in a
  ``deque(maxlen=...)``; on overflow the *oldest* events are dropped and
  ``dropped`` says how many.  Sequence numbers are global, so a truncated
  trace is detectable and still ordered.
* **Zero-overhead when off** — the default :class:`NullTracer` advertises
  ``enabled = False``; emit sites guard on a cached copy of that flag, so
  the disabled cost is one attribute test per *already-expensive* event
  (allocation, merge, frame pop), never per instruction.
* **Lossless JSONL** — events carry only JSON-scalar payloads (ints, strs,
  bools), so ``write_trace``/``read_trace`` round-trip exactly.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

#: Every event kind the runtime can emit, with the thesis section that
#: defines the underlying mechanism (see README "Observability").
EVENT_KINDS = (
    "new",            # object creation -> singleton block (section 3.1.3)
    "union",          # contamination merged two blocks (chapter 2)
    "promote",        # areturn moved a block to an older frame (section 2.3)
    "pin",            # block pinned to frame 0, with cause (sections 3.1.3-3.3)
    "frame_pop",      # a frame popped; its block list was collected (3.1.2)
    "block_collect",  # one equilive block reclaimed at a frame pop
    "reset_pass",     # a section 3.6 reset pass completed
    "recycle_hit",    # an allocation reused parked storage (section 3.7)
    "recycle_miss",   # the recycle search found no donor (section 3.7)
    "gc_start",       # the traditional (tracing) collector began a cycle
    "gc_end",         # ...and finished it
    "fault_inject",   # an armed FaultPlan site fired (repro.faults)
    "degrade",        # the allocation cascade tried the next recovery tier
    "oom_recover",    # ...and a tier satisfied the allocation
)

#: Default ring capacity: ample for quickstart-scale runs, bounded for
#: long ones (~1M events; each event is a small dict + tuple).
DEFAULT_CAPACITY = 1 << 20


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped event: global sequence number, kind, payload."""

    seq: int
    kind: str
    data: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> str:
        record = {"seq": self.seq, "kind": self.kind}
        record.update(self.data)
        return json.dumps(record, sort_keys=True)

    @staticmethod
    def from_json(line: str) -> "TraceEvent":
        record = json.loads(line)
        seq = record.pop("seq")
        kind = record.pop("kind")
        return TraceEvent(seq, kind, record)


class Tracer:
    """Bounded event sink.  ``emit`` is the only hot-path method."""

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self.events: deque = deque(maxlen=capacity)
        self.emitted = 0

    def emit(self, kind: str, **data: object) -> None:
        self.events.append(TraceEvent(self.emitted, kind, data))
        self.emitted += 1

    @property
    def dropped(self) -> int:
        """Events lost to ring overflow (oldest-first)."""
        return self.emitted - len(self.events)

    @property
    def complete(self) -> bool:
        return self.dropped == 0

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def kind_counts(self) -> Counter:
        return Counter(event.kind for event in self.events)

    def clear(self) -> None:
        self.events.clear()
        self.emitted = 0


class NullTracer:
    """The default sink: emits nothing, costs nothing measurable."""

    enabled = False
    capacity = 0
    emitted = 0
    dropped = 0
    complete = True

    def emit(self, kind: str, **data: object) -> None:  # pragma: no cover
        pass

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(())

    def kind_counts(self) -> Counter:
        return Counter()


#: Shared no-op instance (stateless, safe to share across runtimes).
NULL_TRACER = NullTracer()


# ---------------------------------------------------------------------------
# Harness integration: an ambient tracer the runner picks up
# ---------------------------------------------------------------------------

_ACTIVE_TRACER: Optional[Tracer] = None


def get_active_tracer() -> Optional[Tracer]:
    """The tracer installed by :func:`tracing_to`, if any."""
    return _ACTIVE_TRACER


@contextmanager
def tracing_to(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as the ambient sink for runs started inside.

    ``repro.api.run`` consults this so figure generators can be traced
    without threading a tracer through every call site.
    """
    global _ACTIVE_TRACER
    previous = _ACTIVE_TRACER
    _ACTIVE_TRACER = tracer
    try:
        yield tracer
    finally:
        _ACTIVE_TRACER = previous


# ---------------------------------------------------------------------------
# JSONL export / reload
# ---------------------------------------------------------------------------

def write_trace(path: str, tracer: Tracer,
                op_hist: Optional[Dict[str, int]] = None) -> int:
    """Write a tracer's buffered events as JSONL; returns events written.

    The first line is a ``_meta`` record (emitted/dropped/capacity) so a
    reloaded trace knows whether it is complete.  ``op_hist`` (optional)
    embeds a per-opcode execution histogram in the meta record — trace
    events carry no opcodes, so this is the only way ``trace-summary``
    can report them later.
    """
    meta = {
        "kind": "_meta",
        "emitted": tracer.emitted,
        "dropped": tracer.dropped,
        "capacity": tracer.capacity,
    }
    if op_hist:
        meta["op_hist"] = dict(op_hist)
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(meta, sort_keys=True) + "\n")
        for event in tracer:
            fh.write(event.to_json() + "\n")
            count += 1
    return count


def read_trace(path: str) -> Tuple[Dict[str, object], List[TraceEvent]]:
    """Reload a JSONL trace; returns (meta, events).

    Traces written without a ``_meta`` header (e.g. hand-built fixtures)
    get a synthesized one with ``dropped = 0``.
    """
    events: List[TraceEvent] = []
    meta: Optional[Dict[str, object]] = None
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "_meta":
                meta = record
                continue
            events.append(TraceEvent.from_json(line))
    if meta is None:
        meta = {"kind": "_meta", "emitted": len(events), "dropped": 0,
                "capacity": len(events)}
    return meta, events


# ---------------------------------------------------------------------------
# Summaries: recompute run counters from the event stream alone
# ---------------------------------------------------------------------------

@dataclass
class TraceSummary:
    """Headline counters recomputed purely from a trace.

    On a complete (non-overflowed) trace these match the live counters
    exactly: ``objects_popped`` equals ``CGStats.objects_popped`` and
    ``contaminations`` equals ``CGStats.contaminations`` — the tracer is a
    second, independent witness of the run.
    """

    events: int = 0
    complete: bool = True
    kind_counts: Dict[str, int] = field(default_factory=dict)
    objects_created: int = 0
    objects_popped: int = 0
    contaminations: int = 0
    promotions: int = 0
    frame_pops: int = 0
    blocks_collected: int = 0
    reset_passes: int = 0
    recycle_hits: int = 0
    recycle_misses: int = 0
    gc_cycles: int = 0
    faults_injected: int = 0
    degrades: int = 0
    oom_recoveries: int = 0
    pins_by_cause: Dict[str, int] = field(default_factory=dict)
    #: Per-opcode execution histogram (mnemonic -> count).  Trace events
    #: carry no opcodes, so this is attached from the interpreter's
    #: ``count_opcodes`` histogram (``vm.op.*`` metrics) when available
    #: rather than recomputed from the stream.
    op_hist: Optional[Dict[str, int]] = None

    def render(self) -> str:
        lines = [
            f"events:           {self.events}"
            + ("" if self.complete else "  (INCOMPLETE: ring overflowed)"),
            f"objects created:  {self.objects_created}",
            f"objects popped:   {self.objects_popped}",
            f"contaminations:   {self.contaminations}",
            f"promotions:       {self.promotions}",
            f"frame pops:       {self.frame_pops}"
            f"  (blocks collected: {self.blocks_collected})",
            f"reset passes:     {self.reset_passes}",
            f"recycle hit/miss: {self.recycle_hits}/{self.recycle_misses}",
            f"gc cycles:        {self.gc_cycles}",
        ]
        if self.faults_injected or self.degrades or self.oom_recoveries:
            lines.append(
                f"faults:           injected={self.faults_injected} "
                f"degrades={self.degrades} recoveries={self.oom_recoveries}"
            )
        if self.pins_by_cause:
            causes = ", ".join(
                f"{cause}={count}"
                for cause, count in sorted(self.pins_by_cause.items())
            )
            lines.append(f"static pins:      {causes}")
        by_kind = ", ".join(
            f"{kind}={count}" for kind, count in sorted(self.kind_counts.items())
        )
        lines.append(f"by kind:          {by_kind}")
        if self.op_hist:
            top = sorted(self.op_hist.items(), key=lambda kv: (-kv[1], kv[0]))
            shown = ", ".join(f"{name}={count}" for name, count in top[:8])
            if len(top) > 8:
                shown += f", ... ({len(top) - 8} more)"
            lines.append(f"top opcodes:      {shown}")
        return "\n".join(lines)


def summarize(events: Iterable[TraceEvent], complete: bool = True,
              op_hist: Optional[Dict[str, int]] = None) -> TraceSummary:
    """Fold an event stream into a :class:`TraceSummary`.

    ``op_hist`` (optional) attaches an interpreter per-opcode histogram —
    see :attr:`TraceSummary.op_hist`.
    """
    summary = TraceSummary(complete=complete, op_hist=op_hist)
    kinds: Counter = Counter()
    pins: Counter = Counter()
    for event in events:
        summary.events += 1
        kinds[event.kind] += 1
        if event.kind == "frame_pop":
            summary.objects_popped += int(event.data.get("freed", 0))
        elif event.kind == "pin":
            pins[str(event.data.get("cause", "?"))] += 1
    summary.kind_counts = dict(kinds)
    summary.objects_created = kinds["new"]
    summary.contaminations = kinds["union"]
    summary.promotions = kinds["promote"]
    summary.frame_pops = kinds["frame_pop"]
    summary.blocks_collected = kinds["block_collect"]
    summary.reset_passes = kinds["reset_pass"]
    summary.recycle_hits = kinds["recycle_hit"]
    summary.recycle_misses = kinds["recycle_miss"]
    summary.gc_cycles = kinds["gc_start"]
    summary.faults_injected = kinds["fault_inject"]
    summary.degrades = kinds["degrade"]
    summary.oom_recoveries = kinds["oom_recover"]
    summary.pins_by_cause = dict(pins)
    return summary
