"""Live snapshots and the heartbeat that spools them.

The paper's central claim — reclamation at frame-pop with no marking
pause — is a claim about *runtime behavior*, but until now the only
window into an in-flight run was a :class:`~repro.faults.CrashDump` at
death or a trace file after the fact.  This module generalizes the crash
dump into a :class:`LiveSnapshot` any observer can take at any op
boundary, and a :class:`Heartbeat` that serializes one every
``heartbeat_every`` mutator operations to a well-known spool path, where
``python -m repro inspect`` (see :mod:`repro.obs.inspect`) can render it
from another process.

Design constraints, in order:

* **Determinism.**  The cadence is pure op-counter arithmetic driven from
  :meth:`repro.jvm.runtime.Runtime.tick` — snapshots fire when ``ops``
  crosses a multiple of ``heartbeat_every``, identically under every
  dispatch tier.  Wall-clock fields (``time``, ``uptime_s``) are advisory
  labels on the snapshot, never inputs to it, so arming a heartbeat
  leaves a run's counters bit-identical to a heartbeat-off run.
* **Zero cost when off.**  ``heartbeat_every=None`` (the default) binds
  the same specialized tick paths as before; no hook, no branch.
* **Crash-safe publication.**  Each beat rewrites the run's spool file
  through a temp file + ``os.replace`` (atomic on POSIX), so a reader
  never sees a torn snapshot.  The file holds a bounded ring of the most
  recent :data:`DEFAULT_RING` snapshots, one JSON object per line, oldest
  first; per process at most :data:`MAX_RUN_FILES` run files are kept.

One run maps to one spool file ``run-<pid>-<n>.jsonl`` (``n`` is a
per-process run ordinal: pool workers execute many cells per process).
The spool directory defaults to ``$REPRO_SPOOL`` or
``<tempdir>/repro-spool``.  Optionally each beat is also pushed to a Unix
datagram socket (``heartbeat_socket``) for push-based collectors; socket
errors are swallowed — observability must never kill the run.
"""

from __future__ import annotations

import io
import json
import os
import re
import socket
import tempfile
import time
from collections import deque
from pathlib import Path
from typing import Dict, List, Optional

#: Version tag carried by every snapshot (heartbeat *and* crash dump).
#: v2 added the ``latency`` section: per-phase p50/p99/max timing
#: percentiles from the phase profiler (None when profiling is off).
#: v3 added the ``requests`` section: per-request latency/pause
#: attribution from request-structured workloads (None when the run is
#: unprofiled or the workload never brackets requests).
#: v4 added the ``compile`` section: the interpreter's always-on
#: compile-budget counters (methods compiled/codegenned/promoted/
#: recompiled, wall ms per tier, persistent-cache traffic) — present
#: even in unprofiled runs, None only before the interpreter exists.
SNAPSHOT_SCHEMA = "cg-snapshot/4"

#: Snapshots retained per run file (a ring: older beats roll off).
DEFAULT_RING = 16

#: Run files retained per process (pool workers run many cells).
MAX_RUN_FILES = 16

_RUN_FILE_RE = re.compile(r"^run-(\d+)-(\d+)\.jsonl$")


def default_spool_dir() -> Path:
    """``$REPRO_SPOOL`` or ``<tempdir>/repro-spool``."""
    env = os.environ.get("REPRO_SPOOL")
    if env:
        return Path(env)
    return Path(tempfile.gettempdir()) / "repro-spool"


def run_file_pid(path: "os.PathLike[str]") -> Optional[int]:
    """The pid encoded in a ``run-<pid>-<n>.jsonl`` name (None if not one)."""
    match = _RUN_FILE_RE.match(Path(path).name)
    return int(match.group(1)) if match else None


# ---------------------------------------------------------------------------
# Snapshot capture
# ---------------------------------------------------------------------------

def frame_stacks(runtime) -> List[Dict]:
    """Per-thread frame stacks (method, depth, CG block count per frame)."""
    stacks = []
    for thread in runtime.scheduler.threads:
        frames = []
        for frame in thread.stack.frames:
            method = frame.method
            frames.append({
                "frame_id": frame.frame_id,
                "depth": frame.depth,
                "method": (method.qualified_name
                           if method is not None else None),
                "blocks": len(frame.cg_blocks),
            })
        stacks.append({"thread": thread.name, "frames": frames})
    return stacks


def runtime_snapshot(runtime) -> Dict:
    """The schema shared by heartbeats and crash dumps.

    Read-only and tolerant: every section degrades to ``None`` when its
    subsystem is absent, so a snapshot can be taken from any state the
    runtime can reach (including mid-OOM).
    """
    data: Dict[str, object] = {
        "schema": SNAPSHOT_SCHEMA,
        "ops": runtime.ops,
        "heap": runtime.heap.occupancy(),
        "allocator": runtime.heap.allocator,
    }
    collector = runtime.collector
    data["equilive"] = (
        collector.block_census() if collector is not None else None
    )
    data["recycle"] = (
        collector.recycle.census() if collector is not None else None
    )
    data["frames"] = frame_stacks(runtime)
    stats = getattr(runtime, "fault_stats", None)
    data["fault_stats"] = dict(stats) if stats else {}
    profiler = getattr(runtime, "profiler", None)
    data["latency"] = (
        profiler.latency_summary()
        if profiler is not None and profiler.enabled else None
    )
    data["requests"] = (
        profiler.request_summary()
        if profiler is not None and profiler.enabled else None
    )
    # getattr, not the lazy property: a snapshot must never *create* the
    # interpreter (crash dumps can fire before the first instruction).
    interp = getattr(runtime, "_interpreter", None)
    data["compile"] = (
        {
            "methods_compiled": interp.methods_compiled,
            "methods_codegenned": interp.methods_codegenned,
            "methods_promoted": interp.methods_promoted,
            "methods_recompiled": interp.methods_recompiled,
            "compile_ms": interp.compile_seconds * 1000.0,
            "codegen_ms": interp.codegen_seconds * 1000.0,
            "cache_hits": interp.codegen_cache_hits,
            "cache_misses": interp.codegen_cache_misses,
        }
        if interp is not None else None
    )
    return data


class LiveSnapshot:
    """One observation of an in-flight runtime, JSON-serializable.

    A generalization of the crash dump: the same base schema
    (:func:`runtime_snapshot`) plus heartbeat identity (``seq``, ``pid``,
    labels), the full :class:`~repro.obs.metrics.MetricsRegistry` dump,
    and advisory wall-clock fields.
    """

    def __init__(self, data: Dict) -> None:
        self.data = data

    def to_dict(self) -> Dict:
        return self.data

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.data, indent=indent, sort_keys=True,
                          default=str)

    def __repr__(self) -> str:
        return (f"<LiveSnapshot seq={self.data.get('seq')} "
                f"ops={self.data.get('ops')}>")

    @classmethod
    def capture(cls, runtime, *, seq: int = 0, phase: str = "live",
                labels: Optional[Dict] = None,
                uptime_s: Optional[float] = None,
                include_metrics: bool = True) -> "LiveSnapshot":
        data = runtime_snapshot(runtime)
        data["kind"] = "heartbeat"
        data["phase"] = phase
        data["seq"] = seq
        data["pid"] = os.getpid()
        data["labels"] = dict(labels or {})
        # Advisory only: never read back into the run.
        data["time"] = time.time()
        data["uptime_s"] = uptime_s
        if include_metrics:
            from .metrics import collect_runtime_metrics

            data["metrics"] = collect_runtime_metrics(runtime).to_dict()
        return cls(data)


# ---------------------------------------------------------------------------
# The heartbeat
# ---------------------------------------------------------------------------

_run_ordinal = 0


def _next_run_ordinal() -> int:
    global _run_ordinal
    _run_ordinal += 1
    return _run_ordinal


class Heartbeat:
    """Spools a bounded ring of :class:`LiveSnapshot` lines for one run.

    Owned by the :class:`~repro.jvm.runtime.Runtime` when
    ``RuntimeConfig(heartbeat_every=N)`` is armed; ``beat`` is invoked
    from the tick path, ``close`` by whoever drives the run (the
    :func:`repro.api.execute` facade) so even a run shorter than one
    period leaves a final snapshot behind.
    """

    def __init__(self, every: int, spool: Optional[str] = None,
                 ring: int = DEFAULT_RING,
                 socket_path: Optional[str] = None,
                 labels: Optional[Dict] = None) -> None:
        self.every = int(every)
        self.ring = max(1, int(ring))
        self.labels = dict(labels or {})
        self.seq = 0
        self.pid = os.getpid()
        self.spool_dir = Path(spool) if spool else default_spool_dir()
        try:
            self.spool_dir.mkdir(parents=True, exist_ok=True)
        except OSError:
            # An unusable spool (read-only fs, bad path) degrades every
            # beat to a no-op; observability must never kill the run.
            pass
        self.path = self.spool_dir / (
            f"run-{self.pid}-{_next_run_ordinal()}.jsonl"
        )
        self._lines: deque = deque(maxlen=self.ring)
        self._started = time.perf_counter()
        self._socket_path = socket_path
        self._sock: Optional[socket.socket] = None
        self.closed = False
        self._prune_run_files()

    # -- spool hygiene --------------------------------------------------

    def _prune_run_files(self) -> None:
        """Keep at most :data:`MAX_RUN_FILES` run files for this pid."""
        mine = sorted(
            (p for p in self.spool_dir.glob(f"run-{self.pid}-*.jsonl")
             if _RUN_FILE_RE.match(p.name) and p != self.path),
            key=lambda p: int(_RUN_FILE_RE.match(p.name).group(2)),
        )
        for stale in mine[:max(0, len(mine) - (MAX_RUN_FILES - 1))]:
            try:
                stale.unlink()
            except OSError:
                pass

    # -- emission -------------------------------------------------------

    def beat(self, runtime, phase: str = "live") -> LiveSnapshot:
        """Capture and publish one snapshot (atomic rename, then socket)."""
        snapshot = LiveSnapshot.capture(
            runtime, seq=self.seq, phase=phase, labels=self.labels,
            uptime_s=time.perf_counter() - self._started,
        )
        self.seq += 1
        line = snapshot.to_json()
        self._lines.append(line)
        self._write()
        self._send(line)
        return snapshot

    def close(self, runtime) -> Optional[LiveSnapshot]:
        """Final beat (``phase="final"``) + socket teardown.  Idempotent."""
        if self.closed:
            return None
        self.closed = True
        try:
            snapshot = self.beat(runtime, phase="final")
        finally:
            if self._sock is not None:
                try:
                    self._sock.close()
                except OSError:
                    pass
                self._sock = None
        return snapshot

    def _write(self) -> None:
        tmp = self.path.with_suffix(".jsonl.tmp")
        buf = io.StringIO()
        for line in self._lines:
            buf.write(line)
            buf.write("\n")
        try:
            tmp.write_text(buf.getvalue(), encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError:
            # Spool trouble (disk full, dir removed) must not kill the run.
            pass

    def _send(self, line: str) -> None:
        if self._socket_path is None or not hasattr(socket, "AF_UNIX"):
            return
        try:
            if self._sock is None:
                self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_DGRAM)
                self._sock.setblocking(False)
            self._sock.sendto(line.encode("utf-8"), self._socket_path)
        except OSError:
            # No listener / buffer full / path gone: advisory channel only.
            pass
