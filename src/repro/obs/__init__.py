"""repro.obs — observability for the CG runtime.

Three independent layers, each a no-op unless explicitly enabled:

* :mod:`repro.obs.events` — a bounded ring-buffer :class:`Tracer` the
  collector and VM emit typed events into (``new``, ``union``, ``promote``,
  ``pin``, ``frame_pop``, ``block_collect``, ``reset_pass``,
  ``recycle_hit``/``recycle_miss``, ``gc_start``/``gc_end``), with JSONL
  export, reload, and a :func:`summarize` that recomputes a run's headline
  counters from the event stream alone.
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters, gauges
  and histograms unifying ``CGStats``, heap occupancy, and tracing-GC work
  into one snapshot/delta-able view with ``to_dict()``/JSONL emission.
* :mod:`repro.obs.profile` — ``perf_counter``-based phase timers
  (interpret, cg-events, msa, recycle-search) plus a per-frame-depth time
  profile (a poor man's flamegraph over the shadow stack).

The default wiring installs :data:`NULL_TRACER` and :data:`NULL_PROFILER`,
whose ``enabled`` flag is ``False``; every hook in the hot paths guards on
that flag, so observability-off costs one attribute test, not a call.
"""

from .events import (
    EVENT_KINDS,
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    TraceSummary,
    read_trace,
    summarize,
    tracing_to,
    get_active_tracer,
    write_trace,
)
from .metrics import MetricsRegistry, collect_runtime_metrics
from .profile import NULL_PROFILER, NullProfiler, PhaseProfiler

__all__ = [
    "EVENT_KINDS",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_TRACER",
    "NullProfiler",
    "NullTracer",
    "PhaseProfiler",
    "TraceEvent",
    "Tracer",
    "TraceSummary",
    "collect_runtime_metrics",
    "get_active_tracer",
    "read_trace",
    "summarize",
    "tracing_to",
    "write_trace",
]
