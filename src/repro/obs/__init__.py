"""repro.obs — observability for the CG runtime.

Three independent layers, each a no-op unless explicitly enabled:

* :mod:`repro.obs.events` — a bounded ring-buffer :class:`Tracer` the
  collector and VM emit typed events into (``new``, ``union``, ``promote``,
  ``pin``, ``frame_pop``, ``block_collect``, ``reset_pass``,
  ``recycle_hit``/``recycle_miss``, ``gc_start``/``gc_end``), with JSONL
  export, reload, and a :func:`summarize` that recomputes a run's headline
  counters from the event stream alone.
* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters, gauges
  and histograms unifying ``CGStats``, heap occupancy, and tracing-GC work
  into one snapshot/delta-able view with ``to_dict()``/JSONL emission.
* :mod:`repro.obs.profile` — ``perf_counter``-based phase timers
  (interpret, cg-events, msa, recycle-search) plus a per-frame-depth time
  profile (a poor man's flamegraph over the shadow stack).
* :mod:`repro.obs.heartbeat` / :mod:`repro.obs.inspect` — periodic
  :class:`LiveSnapshot` heartbeats spooled to disk (and optionally a Unix
  socket) every N executed opcodes, and the out-of-process
  ``python -m repro inspect`` reader that renders single runs or a
  fleet-wide rollup from the spool.

The default wiring installs :data:`NULL_TRACER` and :data:`NULL_PROFILER`,
whose ``enabled`` flag is ``False``; every hook in the hot paths guards on
that flag, so observability-off costs one attribute test, not a call.
"""

from .events import (
    EVENT_KINDS,
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    TraceSummary,
    read_trace,
    summarize,
    tracing_to,
    get_active_tracer,
    write_trace,
)
from .heartbeat import (
    SNAPSHOT_SCHEMA,
    Heartbeat,
    LiveSnapshot,
    default_spool_dir,
    runtime_snapshot,
)
from .metrics import MetricsRegistry, collect_runtime_metrics
from .profile import NULL_PROFILER, NullProfiler, PhaseProfiler

__all__ = [
    "EVENT_KINDS",
    "Heartbeat",
    "LiveSnapshot",
    "MetricsRegistry",
    "SNAPSHOT_SCHEMA",
    "NULL_PROFILER",
    "NULL_TRACER",
    "NullProfiler",
    "NullTracer",
    "PhaseProfiler",
    "TraceEvent",
    "Tracer",
    "TraceSummary",
    "collect_runtime_metrics",
    "default_spool_dir",
    "get_active_tracer",
    "runtime_snapshot",
    "read_trace",
    "summarize",
    "tracing_to",
    "write_trace",
]
