"""Phase profiling: where does a run's wall clock actually go?

The paper's timing argument (sections 4.5-4.6) decomposes cost into
mutator work, CG maintenance, and tracing-collector work; our cost model
charges those from counters.  The profiler measures the same decomposition
in *real* ``time.perf_counter()`` seconds, so the model's weights can be
sanity-checked against this substrate and hot paths can be found before
optimizing them.

Two instruments:

* **Phase timers** — named accumulators (``interpret``, ``cg-events``,
  ``msa``, ``recycle-search``) charged by the VM at coarse boundaries: one
  sample per interpreter quantum / GC cycle / recycle search, never per
  instruction.
* **Depth profile** — interpreter time attributed to the shadow-stack
  depth at which it was spent: a one-dimensional flamegraph that shows
  which call depths dominate (and hence which frames' pops CG should win
  on).

As with tracing, the default :data:`NULL_PROFILER` advertises
``enabled = False`` and hot paths guard on that flag, so profiling-off
costs a branch, not a clock read.
"""

from __future__ import annotations

from collections import defaultdict, deque
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator

#: Per-phase sample window for the latency distribution (a bounded deque:
#: percentiles reflect the most recent samples, memory stays O(1)).
SAMPLE_WINDOW = 512

#: Canonical phase names the VM charges (others are allowed).
PHASE_INTERPRET = "interpret"
PHASE_CG_EVENTS = "cg-events"
PHASE_MSA = "msa"
PHASE_RECYCLE = "recycle-search"
#: One-time closure compilation in the ``dispatch="closure"`` and
#: ``dispatch="compiled"`` tiers — charged per method at first invocation,
#: never on the hot loop.  (The compiled tier always builds the closure
#: form first: it is the deopt target and owns the quickening cells.)
PHASE_COMPILE = "compile"
#: One-time Python-source generation + ``exec`` in the
#: ``dispatch="compiled"`` tier, charged separately from
#: :data:`PHASE_COMPILE` so warmup cost decomposes into "closure compile"
#: vs "codegen" — the bench harness's ``compile_ms`` column is the sum.
PHASE_CODEGEN = "codegen"


class PhaseProfiler:
    """Accumulates seconds per named phase and per stack depth."""

    enabled = True

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = defaultdict(float)
        self.calls: Dict[str, int] = defaultdict(int)
        #: stack depth -> interpreter seconds spent at that depth.
        self.depth_seconds: Dict[int, float] = defaultdict(float)
        #: phase -> bounded window of recent per-sample durations, the
        #: raw material for :meth:`latency_summary`'s percentiles.
        self.samples: Dict[str, deque] = defaultdict(
            lambda: deque(maxlen=SAMPLE_WINDOW)
        )

    def add(self, phase: str, seconds: float) -> None:
        self.seconds[phase] += seconds
        self.calls[phase] += 1
        self.samples[phase].append(seconds)

    def charge_depth(self, depth: int, seconds: float) -> None:
        self.depth_seconds[depth] += seconds

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a block (convenience wrapper for non-hot call sites)."""
        started = perf_counter()
        try:
            yield
        finally:
            self.add(name, perf_counter() - started)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def latency_summary(self) -> Dict[str, Dict]:
        """Per-phase timing percentiles over the recent sample window.

        ``{phase: {"p50_ms", "p99_ms", "max_ms", "samples", "window"}}``
        — nearest-rank percentiles in milliseconds.  ``samples`` is the
        lifetime count (``calls``); ``window`` is how many of them back
        the percentiles (at most :data:`SAMPLE_WINDOW`).  This is the
        timing distribution the ``cg-snapshot`` schema carries: the
        counters say how much total time each phase took, this says how
        that time was *shaped* — the tail the paper's no-marking-pause
        claim is really about.
        """
        summary: Dict[str, Dict] = {}
        for phase in sorted(self.samples):
            window = sorted(self.samples[phase])
            if not window:
                continue
            n = len(window)

            def rank(q: float) -> float:
                return window[min(n - 1, max(0, int(q * n + 0.5) - 1))]

            summary[phase] = {
                "p50_ms": rank(0.50) * 1000.0,
                "p99_ms": rank(0.99) * 1000.0,
                "max_ms": window[-1] * 1000.0,
                "samples": self.calls[phase],
                "window": n,
            }
        return summary

    def to_dict(self) -> Dict[str, Dict]:
        return {
            "phases": {
                name: {"seconds": self.seconds[name], "samples": self.calls[name]}
                for name in sorted(self.seconds)
            },
            "depth_seconds": {
                str(depth): seconds
                for depth, seconds in sorted(self.depth_seconds.items())
            },
        }

    def render(self) -> str:
        """Human-readable report: phase table + depth bars."""
        total = self.total_seconds() or 1.0
        lines = ["phase              seconds   share  samples"]
        for name in sorted(self.seconds, key=self.seconds.get, reverse=True):
            seconds = self.seconds[name]
            lines.append(
                f"{name:<18} {seconds:8.4f}  {100.0 * seconds / total:5.1f}%"
                f"  {self.calls[name]}"
            )
        if self.depth_seconds:
            lines.append("")
            lines.append("interpreter time by stack depth:")
            peak = max(self.depth_seconds.values()) or 1.0
            for depth in sorted(self.depth_seconds):
                seconds = self.depth_seconds[depth]
                bar = "#" * max(1, int(40 * seconds / peak))
                lines.append(f"  depth {depth:>3} {seconds:8.4f}s {bar}")
        return "\n".join(lines)


class NullProfiler:
    """No-op stand-in; ``enabled`` is False so hot paths skip the clock."""

    enabled = False
    seconds: Dict[str, float] = {}
    calls: Dict[str, int] = {}
    depth_seconds: Dict[int, float] = {}
    samples: Dict[str, deque] = {}

    def add(self, phase: str, seconds: float) -> None:  # pragma: no cover
        pass

    def charge_depth(self, depth: int, seconds: float) -> None:  # pragma: no cover
        pass

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        yield

    def total_seconds(self) -> float:
        return 0.0

    def latency_summary(self) -> Dict[str, Dict]:
        return {}

    def to_dict(self) -> Dict[str, Dict]:
        return {"phases": {}, "depth_seconds": {}}


#: Shared no-op instance (stateless, safe to share across runtimes).
NULL_PROFILER = NullProfiler()
