"""Phase profiling: where does a run's wall clock actually go?

The paper's timing argument (sections 4.5-4.6) decomposes cost into
mutator work, CG maintenance, and tracing-collector work; our cost model
charges those from counters.  The profiler measures the same decomposition
in *real* ``time.perf_counter()`` seconds, so the model's weights can be
sanity-checked against this substrate and hot paths can be found before
optimizing them.

Two instruments:

* **Phase timers** — named accumulators (``interpret``, ``cg-events``,
  ``msa``, ``recycle-search``) charged by the VM at coarse boundaries: one
  sample per interpreter quantum / GC cycle / recycle search, never per
  instruction.
* **Depth profile** — interpreter time attributed to the shadow-stack
  depth at which it was spent: a one-dimensional flamegraph that shows
  which call depths dominate (and hence which frames' pops CG should win
  on).

As with tracing, the default :data:`NULL_PROFILER` advertises
``enabled = False`` and hot paths guard on that flag, so profiling-off
costs a branch, not a clock read.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import defaultdict, deque
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, List, Optional

#: Per-phase sample window for the latency distribution (a bounded deque:
#: percentiles reflect the most recent samples, memory stays O(1)).
SAMPLE_WINDOW = 512

#: Canonical phase names the VM charges (others are allowed).
PHASE_INTERPRET = "interpret"
PHASE_CG_EVENTS = "cg-events"
PHASE_MSA = "msa"
PHASE_RECYCLE = "recycle-search"
#: One-time closure compilation in the ``dispatch="closure"`` and
#: ``dispatch="compiled"`` tiers — charged per method at first invocation,
#: never on the hot loop.  (The compiled tier always builds the closure
#: form first: it is the deopt target and owns the quickening cells.)
PHASE_COMPILE = "compile"
#: One-time Python-source generation + ``exec`` in the
#: ``dispatch="compiled"`` tier, charged separately from
#: :data:`PHASE_COMPILE` so warmup cost decomposes into "closure compile"
#: vs "codegen" — the bench harness's ``compile_ms`` column is the sum.
PHASE_CODEGEN = "codegen"

#: Phases that count as *collector pause time* for per-request
#: attribution: the tracing collector (allocation-failure or periodic
#: MSA), CG's event handlers, and the recycle-list search.  Interpreter
#: and one-time compile/codegen phases are mutator/warmup time.
PAUSE_PHASES = frozenset({PHASE_MSA, PHASE_CG_EVENTS, PHASE_RECYCLE})

#: Phases that count as *warmup* (one-time compilation) for per-request
#: attribution: a request that first-invokes a method eats its closure
#: compile and codegen right inside the request window.  Tracked
#: separately from :data:`PAUSE_PHASES` so ``bench --sla`` can show
#: warmup pauses shrinking under tiered dispatch while collector pauses
#: stay untouched.
WARMUP_PHASES = frozenset({PHASE_COMPILE, PHASE_CODEGEN})

#: Pause-histogram bucket upper bounds in milliseconds (log-ish scale);
#: a sample lands in the first bucket whose bound is >= its duration,
#: and anything beyond the last bound lands in the overflow bucket, so
#: ``counts`` always has ``len(PAUSE_BUCKETS_MS) + 1`` entries.
PAUSE_BUCKETS_MS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0,
                    50.0, 100.0)


def _nearest_rank(window: List[float]) -> Dict[str, float]:
    """p50/p99/p999/max (milliseconds) of an already-sorted sample list."""
    n = len(window)

    def rank(q: float) -> float:
        return window[min(n - 1, max(0, int(q * n + 0.5) - 1))]

    return {
        "p50_ms": rank(0.50) * 1000.0,
        "p99_ms": rank(0.99) * 1000.0,
        "p999_ms": rank(0.999) * 1000.0,
        "max_ms": window[-1] * 1000.0,
    }


class PhaseProfiler:
    """Accumulates seconds per named phase and per stack depth."""

    enabled = True

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = defaultdict(float)
        self.calls: Dict[str, int] = defaultdict(int)
        #: stack depth -> interpreter seconds spent at that depth.
        self.depth_seconds: Dict[int, float] = defaultdict(float)
        #: phase -> bounded window of recent per-sample durations, the
        #: raw material for :meth:`latency_summary`'s percentiles.
        self.samples: Dict[str, deque] = defaultdict(
            lambda: deque(maxlen=SAMPLE_WINDOW)
        )
        #: Full per-request samples (seconds): total window time and the
        #: pause-phase time that landed inside it.  Unbounded on purpose —
        #: p999 over a server run needs every request, not a window.
        self.request_totals: List[float] = []
        self.request_pauses: List[float] = []
        #: Per-request warmup time: :data:`WARMUP_PHASES` (one-time
        #: compile/codegen) samples that landed inside the window — the
        #: compile-budget attribution the tiered dispatch mode exists to
        #: shrink on early requests.
        self.request_compiles: List[float] = []
        #: Histogram of *every* pause-phase sample (inside a request
        #: window or not), bucketed per :data:`PAUSE_BUCKETS_MS`.
        self.pause_hist: List[int] = [0] * (len(PAUSE_BUCKETS_MS) + 1)
        self._request_started: Optional[float] = None
        self._request_pause = 0.0
        self._request_compile = 0.0

    def add(self, phase: str, seconds: float) -> None:
        self.seconds[phase] += seconds
        self.calls[phase] += 1
        self.samples[phase].append(seconds)
        if phase in PAUSE_PHASES:
            self.pause_hist[
                bisect_left(PAUSE_BUCKETS_MS, seconds * 1000.0)
            ] += 1
            if self._request_started is not None:
                self._request_pause += seconds
        elif phase in WARMUP_PHASES:
            if self._request_started is not None:
                self._request_compile += seconds

    # ------------------------------------------------------------------
    # Per-request attribution
    # ------------------------------------------------------------------

    def request_begin(self) -> None:
        """Open a request window: pause- and warmup-phase time now
        accrues to it."""
        self._request_pause = 0.0
        self._request_compile = 0.0
        self._request_started = perf_counter()

    def request_end(self) -> None:
        """Close the window and record (total, pause, compile)."""
        started = self._request_started
        if started is None:
            return
        self._request_started = None
        self._note_request(perf_counter() - started, self._request_pause,
                           self._request_compile)

    def _note_request(self, total_s: float, pause_s: float,
                      compile_s: float = 0.0) -> None:
        self.request_totals.append(total_s)
        self.request_pauses.append(pause_s)
        self.request_compiles.append(compile_s)

    def charge_depth(self, depth: int, seconds: float) -> None:
        self.depth_seconds[depth] += seconds

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a block (convenience wrapper for non-hot call sites)."""
        started = perf_counter()
        try:
            yield
        finally:
            self.add(name, perf_counter() - started)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def latency_summary(self) -> Dict[str, Dict]:
        """Per-phase timing percentiles over the recent sample window.

        ``{phase: {"p50_ms", "p99_ms", "max_ms", "samples", "window"}}``
        — nearest-rank percentiles in milliseconds.  ``samples`` is the
        lifetime count (``calls``); ``window`` is how many of them back
        the percentiles (at most :data:`SAMPLE_WINDOW`).  This is the
        timing distribution the ``cg-snapshot`` schema carries: the
        counters say how much total time each phase took, this says how
        that time was *shaped* — the tail the paper's no-marking-pause
        claim is really about.
        """
        summary: Dict[str, Dict] = {}
        for phase in sorted(self.samples):
            window = sorted(self.samples[phase])
            if not window:
                continue
            entry = _nearest_rank(window)
            entry["samples"] = self.calls[phase]
            entry["window"] = len(window)
            summary[phase] = entry
        return summary

    def request_summary(self) -> Optional[Dict]:
        """Per-request latency attribution, or None before any request.

        Splits each request's wall time into mutator work and collector
        pause time (the :data:`PAUSE_PHASES` samples that landed inside
        the window) and reports nearest-rank p50/p99/p999/max over the
        *full* run — unlike :meth:`latency_summary`, no sliding window,
        because a server's tail is precisely the samples a window would
        age out.  ``pause_hist`` buckets every pause-phase sample (in- or
        out-of-request) per :data:`PAUSE_BUCKETS_MS` plus one overflow
        slot.
        """
        totals = self.request_totals
        if not totals:
            return None
        pauses = self.request_pauses
        compiles = self.request_compiles
        total_s = sum(totals)
        pause_s = sum(pauses)
        compile_s = sum(compiles)
        mutator = [max(0.0, t - p) for t, p in zip(totals, pauses)]
        return {
            "requests": len(totals),
            "request_ms": _nearest_rank(sorted(totals)),
            "pause_ms": _nearest_rank(sorted(pauses)),
            "mutator_ms": _nearest_rank(sorted(mutator)),
            # Warmup attribution: compile/codegen time that landed inside
            # request windows, plus the first request's wall and compile
            # share — the cold-start numbers tiered promotion shrinks.
            "compile_ms": _nearest_rank(sorted(compiles)),
            "compile_total_ms": compile_s * 1000.0,
            "first_request_ms": totals[0] * 1000.0,
            "first_request_compile_ms": (compiles[0] * 1000.0
                                         if compiles else 0.0),
            "pause_share_pct": (100.0 * pause_s / total_s) if total_s else 0.0,
            "pause_hist": {
                "le_ms": list(PAUSE_BUCKETS_MS),
                "counts": list(self.pause_hist),
            },
        }

    def to_dict(self) -> Dict[str, Dict]:
        return {
            "phases": {
                name: {"seconds": self.seconds[name], "samples": self.calls[name]}
                for name in sorted(self.seconds)
            },
            "depth_seconds": {
                str(depth): seconds
                for depth, seconds in sorted(self.depth_seconds.items())
            },
        }

    def render(self) -> str:
        """Human-readable report: phase table + depth bars."""
        total = self.total_seconds() or 1.0
        lines = ["phase              seconds   share  samples"]
        for name in sorted(self.seconds, key=self.seconds.get, reverse=True):
            seconds = self.seconds[name]
            lines.append(
                f"{name:<18} {seconds:8.4f}  {100.0 * seconds / total:5.1f}%"
                f"  {self.calls[name]}"
            )
        if self.depth_seconds:
            lines.append("")
            lines.append("interpreter time by stack depth:")
            peak = max(self.depth_seconds.values()) or 1.0
            for depth in sorted(self.depth_seconds):
                seconds = self.depth_seconds[depth]
                bar = "#" * max(1, int(40 * seconds / peak))
                lines.append(f"  depth {depth:>3} {seconds:8.4f}s {bar}")
        return "\n".join(lines)


class NullProfiler:
    """No-op stand-in; ``enabled`` is False so hot paths skip the clock."""

    enabled = False
    seconds: Dict[str, float] = {}
    calls: Dict[str, int] = {}
    depth_seconds: Dict[int, float] = {}
    samples: Dict[str, deque] = {}
    request_totals: List[float] = []
    request_pauses: List[float] = []
    request_compiles: List[float] = []
    pause_hist: List[int] = []

    def add(self, phase: str, seconds: float) -> None:  # pragma: no cover
        pass

    def charge_depth(self, depth: int, seconds: float) -> None:  # pragma: no cover
        pass

    def request_begin(self) -> None:
        pass

    def request_end(self) -> None:
        pass

    def request_summary(self) -> Optional[Dict]:
        return None

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        yield

    def total_seconds(self) -> float:
        return 0.0

    def latency_summary(self) -> Dict[str, Dict]:
        return {}

    def to_dict(self) -> Dict[str, Dict]:
        return {"phases": {}, "depth_seconds": {}}


#: Shared no-op instance (stateless, safe to share across runtimes).
NULL_PROFILER = NullProfiler()
