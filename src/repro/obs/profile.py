"""Phase profiling: where does a run's wall clock actually go?

The paper's timing argument (sections 4.5-4.6) decomposes cost into
mutator work, CG maintenance, and tracing-collector work; our cost model
charges those from counters.  The profiler measures the same decomposition
in *real* ``time.perf_counter()`` seconds, so the model's weights can be
sanity-checked against this substrate and hot paths can be found before
optimizing them.

Two instruments:

* **Phase timers** — named accumulators (``interpret``, ``cg-events``,
  ``msa``, ``recycle-search``) charged by the VM at coarse boundaries: one
  sample per interpreter quantum / GC cycle / recycle search, never per
  instruction.
* **Depth profile** — interpreter time attributed to the shadow-stack
  depth at which it was spent: a one-dimensional flamegraph that shows
  which call depths dominate (and hence which frames' pops CG should win
  on).

As with tracing, the default :data:`NULL_PROFILER` advertises
``enabled = False`` and hot paths guard on that flag, so profiling-off
costs a branch, not a clock read.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator

#: Canonical phase names the VM charges (others are allowed).
PHASE_INTERPRET = "interpret"
PHASE_CG_EVENTS = "cg-events"
PHASE_MSA = "msa"
PHASE_RECYCLE = "recycle-search"
#: One-time closure compilation in the ``dispatch="closure"`` tier —
#: charged per method at first invocation, never on the hot loop.
PHASE_COMPILE = "compile"


class PhaseProfiler:
    """Accumulates seconds per named phase and per stack depth."""

    enabled = True

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = defaultdict(float)
        self.calls: Dict[str, int] = defaultdict(int)
        #: stack depth -> interpreter seconds spent at that depth.
        self.depth_seconds: Dict[int, float] = defaultdict(float)

    def add(self, phase: str, seconds: float) -> None:
        self.seconds[phase] += seconds
        self.calls[phase] += 1

    def charge_depth(self, depth: int, seconds: float) -> None:
        self.depth_seconds[depth] += seconds

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Time a block (convenience wrapper for non-hot call sites)."""
        started = perf_counter()
        try:
            yield
        finally:
            self.add(name, perf_counter() - started)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def to_dict(self) -> Dict[str, Dict]:
        return {
            "phases": {
                name: {"seconds": self.seconds[name], "samples": self.calls[name]}
                for name in sorted(self.seconds)
            },
            "depth_seconds": {
                str(depth): seconds
                for depth, seconds in sorted(self.depth_seconds.items())
            },
        }

    def render(self) -> str:
        """Human-readable report: phase table + depth bars."""
        total = self.total_seconds() or 1.0
        lines = ["phase              seconds   share  samples"]
        for name in sorted(self.seconds, key=self.seconds.get, reverse=True):
            seconds = self.seconds[name]
            lines.append(
                f"{name:<18} {seconds:8.4f}  {100.0 * seconds / total:5.1f}%"
                f"  {self.calls[name]}"
            )
        if self.depth_seconds:
            lines.append("")
            lines.append("interpreter time by stack depth:")
            peak = max(self.depth_seconds.values()) or 1.0
            for depth in sorted(self.depth_seconds):
                seconds = self.depth_seconds[depth]
                bar = "#" * max(1, int(40 * seconds / peak))
                lines.append(f"  depth {depth:>3} {seconds:8.4f}s {bar}")
        return "\n".join(lines)


class NullProfiler:
    """No-op stand-in; ``enabled`` is False so hot paths skip the clock."""

    enabled = False
    seconds: Dict[str, float] = {}
    calls: Dict[str, int] = {}
    depth_seconds: Dict[int, float] = {}

    def add(self, phase: str, seconds: float) -> None:  # pragma: no cover
        pass

    def charge_depth(self, depth: int, seconds: float) -> None:  # pragma: no cover
        pass

    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        yield

    def total_seconds(self) -> float:
        return 0.0

    def to_dict(self) -> Dict[str, Dict]:
        return {"phases": {}, "depth_seconds": {}}


#: Shared no-op instance (stateless, safe to share across runtimes).
NULL_PROFILER = NullProfiler()
