"""repro — a full reproduction of "Contaminated Garbage Collection" (PLDI 2000).

Public API tour:

* :class:`repro.Runtime` / :class:`repro.RuntimeConfig` — a VM instance:
  handle-indirected heap, threads, the CG collector, and a traditional
  (tracing) collector.
* :class:`repro.CGPolicy` — which CG variant to run (the section 3.4 static
  optimization, section 3.6 resetting, section 3.7 recycling, handle width).
* :func:`repro.assemble` — build programs in the textual assembly dialect
  and run them with ``runtime.run("Main.main")``.
* :class:`repro.Mutator` — the direct-drive API the SPEC-shaped workloads
  use: same collector events, no bytecode dispatch.
* :mod:`repro.workloads` — the eight SPECjvm98-shaped benchmarks.
* :func:`repro.run` / :class:`repro.RunRequest` — the stable entry point
  for executing one measured workload run (see :mod:`repro.api`); every
  harness surface (figures, bench, CLI) routes through it.
* :class:`repro.FaultPlan` — deterministic fault injection: arm seeded
  faults at the allocator, interpreter, native-call, or harness-worker
  boundary and watch the recovery cascade (see :mod:`repro.faults`).
* :mod:`repro.harness` — run configurations and regenerate every table and
  figure of the paper's evaluation.

Quickstart::

    from repro import CGPolicy, Runtime, RuntimeConfig, Mutator

    rt = Runtime(RuntimeConfig(cg=CGPolicy.paper_default()))
    rt.program.define_class("Node", fields=["next"])
    m = Mutator(rt)
    with m.frame():
        a = m.new("Node")
        with m.frame():
            b = m.new("Node")
            m.putfield(b, "next", a)   # b contaminates a (and vice versa)
        # inner frame popped: nothing freed — the merged block depends on
        # the OUTER frame, because `a` is the older anchor.
    # outer frame popped: both objects collected, no marking performed.
    print(rt.collector.stats.objects_popped)  # -> 2
"""

from .api import RunRequest, RunResult, run
from .core.collector import ContaminatedCollector
from .core.policy import CGPolicy
from .core.stats import CGStats
from .faults import CrashDump, FaultPlan, FaultReport, FaultSpec
from .jvm.assembler import assemble
from .jvm.errors import OutOfMemoryError, UseAfterCollect, VMError
from .jvm.heap import Handle, Heap
from .jvm.model import JClass, JMethod, Program
from .jvm.mutator import Mutator
from .jvm.runtime import Runtime, RuntimeConfig

__version__ = "1.0.0"

__all__ = [
    "CGPolicy",
    "CGStats",
    "ContaminatedCollector",
    "CrashDump",
    "FaultPlan",
    "FaultReport",
    "FaultSpec",
    "Handle",
    "Heap",
    "JClass",
    "JMethod",
    "Mutator",
    "OutOfMemoryError",
    "Program",
    "RunRequest",
    "RunResult",
    "Runtime",
    "RuntimeConfig",
    "UseAfterCollect",
    "VMError",
    "assemble",
    "run",
    "__version__",
]
