"""``python -m repro`` — figure CLI plus ``bench``, ``inspect``, ``serve``.

``python -m repro 4.1 4.5`` regenerates figures (same interface as
``python -m repro.harness.cli``); ``python -m repro bench ...`` runs the
wall-clock benchmark harness (see :mod:`repro.harness.bench`);
``python -m repro inspect ...`` renders live heartbeat snapshots of
in-flight runs (see :mod:`repro.obs.inspect`); ``python -m repro serve
--socket PATH`` keeps a warm worker pool resident and serves run
requests over a Unix socket (see :mod:`repro.harness.serve`).  Figure,
bench, and served cells all execute through :func:`repro.api.run`.
"""

import sys


def main() -> int:
    argv = sys.argv[1:]
    if argv and argv[0] == "bench":
        from .harness.bench import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "inspect":
        from .obs.inspect import main as inspect_main

        return inspect_main(argv[1:])
    if argv and argv[0] == "serve":
        from .harness.serve import main as serve_main

        return serve_main(argv[1:])
    from .harness.cli import main as cli_main

    return cli_main(argv)


if __name__ == "__main__":
    raise SystemExit(main())
