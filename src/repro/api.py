"""The stable programmatic entry surface: one way to run one cell.

Historically the figure runner, the parallel prefetch worker, and the
bench harness each built their Runtime+Collector with a near-copy of the
same code.  This module is now the single construction path:

* :func:`run` — ``run(workload, size, system, ...) -> RunResult`` — is
  what the runner shim, the figure cache, the bench harness, and the CLI
  all call.
* :class:`RunRequest` is the explicit form of the same call; :func:`run`
  is sugar over ``execute(RunRequest(...))``.
* :func:`config_for` maps a named *system* (the paper's comparison
  configurations, table below) to a :class:`RuntimeConfig`.

A *system* is one of the named configurations the paper compares:

==============  ==============================================================
``cg``          CG (with the section 3.4 optimization) + mark-sweep backup —
                the paper's preferred system
``cg-noopt``    CG without the optimization (Fig. 4.1's left column)
``cg-recycle``  CG + the section 3.7 recycling free list (Figs. 4.12/4.13)
``cg-recycle-typed``  the chapter 6 extension: recycling indexed by
                (class, size) for O(1) same-type reuse
``cg-reset``    CG + the section 3.6 reset pass, MSA forced periodically
``cg-segfit``   CG + mark-sweep on the segregated-fit free list
``cg-table``    CG + mark-sweep with the table dispatch tier pinned
                (``dispatch="table"``) — the dispatch-ladder baseline
``cg-closure``  CG + mark-sweep with the closure dispatch tier pinned
                (``dispatch="closure"``) — the ladder's middle rung and
                the compiled tier's deopt target
``cg-compiled`` CG + mark-sweep with the compiled dispatch tier pinned
                (``dispatch="compiled"``: everything codegenned up
                front) — the tiered default's warmup-cost baseline
``jdk``         the unmodified base system: mark-sweep only
``cg-nogc``     CG with the tracing collector disabled and ample storage
``jdk-nogc``    the base system idem (the other half of that comparison)
``gen``         generational tracing collector, no CG (related work)
``train``       train-algorithm tracing collector, no CG (section 5.1)
==============  ==============================================================
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional, Union

from .core.policy import CGPolicy
from .core.stats import CGStats
from .faults import FaultPlan, did_you_mean
from .gc.base import GCWork
from .jvm.runtime import Runtime, RuntimeConfig
from .obs.events import get_active_tracer
from .obs.metrics import collect_runtime_metrics
from .workloads.base import REGISTRY, Workload, get_workload

#: Ample heap used by the *-nogc isolation systems.
BIG_HEAP_WORDS = 1 << 22

#: The thesis ran MSA "every 100,000 JVM instructions" for Fig. 4.11; our
#: runs are ~20x smaller, so the period scales accordingly.
RESET_PERIOD_OPS = 5000

SYSTEMS = (
    "cg", "cg-noopt", "cg-recycle", "cg-recycle-typed", "cg-reset",
    "cg-segfit", "cg-table", "cg-closure", "cg-compiled", "jdk", "cg-nogc",
    "cg-noopt-nogc", "jdk-nogc", "gen", "train",
)


def config_for(system: str, heap_words: int,
               gc_period_ops: Optional[int] = None) -> RuntimeConfig:
    """Build the RuntimeConfig for a named system."""
    if system == "cg":
        return RuntimeConfig(heap_words=heap_words, cg=CGPolicy.paper_default(),
                             tracing="marksweep", gc_period_ops=gc_period_ops)
    if system == "cg-noopt":
        return RuntimeConfig(heap_words=heap_words, cg=CGPolicy.no_opt(),
                             tracing="marksweep", gc_period_ops=gc_period_ops)
    if system == "cg-recycle":
        return RuntimeConfig(heap_words=heap_words,
                             cg=CGPolicy.with_recycling(),
                             tracing="marksweep", gc_period_ops=gc_period_ops)
    if system == "cg-recycle-typed":
        return RuntimeConfig(heap_words=heap_words,
                             cg=CGPolicy.with_typed_recycling(),
                             tracing="marksweep", gc_period_ops=gc_period_ops)
    if system == "cg-reset":
        return RuntimeConfig(
            heap_words=heap_words, cg=CGPolicy.with_resetting(),
            tracing="marksweep",
            gc_period_ops=gc_period_ops or RESET_PERIOD_OPS,
        )
    if system == "cg-segfit":
        return RuntimeConfig(heap_words=heap_words, cg=CGPolicy.paper_default(),
                             tracing="marksweep", gc_period_ops=gc_period_ops,
                             allocator="segregated")
    if system == "cg-table":
        return RuntimeConfig(heap_words=heap_words, cg=CGPolicy.paper_default(),
                             tracing="marksweep", gc_period_ops=gc_period_ops,
                             dispatch="table")
    if system == "cg-closure":
        return RuntimeConfig(heap_words=heap_words, cg=CGPolicy.paper_default(),
                             tracing="marksweep", gc_period_ops=gc_period_ops,
                             dispatch="closure")
    if system == "cg-compiled":
        return RuntimeConfig(heap_words=heap_words, cg=CGPolicy.paper_default(),
                             tracing="marksweep", gc_period_ops=gc_period_ops,
                             dispatch="compiled")
    if system == "jdk":
        return RuntimeConfig(heap_words=heap_words, cg=CGPolicy.disabled(),
                             tracing="marksweep", gc_period_ops=gc_period_ops)
    if system == "cg-nogc":
        return RuntimeConfig(heap_words=BIG_HEAP_WORDS,
                             cg=CGPolicy.paper_default(), tracing="none")
    if system == "cg-noopt-nogc":
        return RuntimeConfig(heap_words=BIG_HEAP_WORDS,
                             cg=CGPolicy.no_opt(), tracing="none")
    if system == "jdk-nogc":
        return RuntimeConfig(heap_words=BIG_HEAP_WORDS,
                             cg=CGPolicy.disabled(), tracing="none")
    if system == "gen":
        return RuntimeConfig(heap_words=heap_words, cg=CGPolicy.disabled(),
                             tracing="generational")
    if system == "train":
        return RuntimeConfig(heap_words=heap_words, cg=CGPolicy.disabled(),
                             tracing="train")
    raise ValueError(
        f"unknown system {system!r}{did_you_mean(system, SYSTEMS)}; "
        f"known: {SYSTEMS}"
    )


@dataclass
class RunResult:
    """Everything a figure generator might need from one run."""

    workload: str
    size: int
    system: str
    objects_created: int
    census: Dict[str, int]
    cg_stats: Optional[CGStats]
    gc_work: GCWork
    cost: "CostBreakdown"
    wall_seconds: float
    ops: int
    alloc_search_steps: int
    peak_live_words: int
    heap_words: int
    #: Unified observability snapshot (``MetricsRegistry.to_dict()``):
    #: counters/gauges/histograms covering CG stats, heap occupancy,
    #: allocator work, tracing-GC work, and (when enabled) phase timings.
    metrics: Dict[str, Dict] = field(default_factory=dict)
    #: The workload's fully resolved parameter bindings (empty for the
    #: schema-less batch workloads).
    params: Dict = field(default_factory=dict)
    #: Per-request latency attribution from
    #: :meth:`~repro.obs.profile.PhaseProfiler.request_summary` — present
    #: only for profiled runs of request-structured workloads.
    latency: Dict = field(default_factory=dict)

    # --- derived metrics used across figures -----------------------------

    @property
    def collectable_pct(self) -> float:
        if self.objects_created == 0:
            return 0.0
        return 100.0 * self.census.get("popped", 0) / self.objects_created

    @property
    def static_pct(self) -> float:
        if self.objects_created == 0:
            return 0.0
        return 100.0 * self.census.get("static", 0) / self.objects_created

    @property
    def thread_pct(self) -> float:
        if self.objects_created == 0:
            return 0.0
        return 100.0 * self.census.get("thread", 0) / self.objects_created

    @property
    def exact_pct(self) -> float:
        if self.cg_stats is None or self.objects_created == 0:
            return 0.0
        return 100.0 * self.cg_stats.exact_objects / self.objects_created

    @property
    def sim_ms(self) -> float:
        return self.cost.total_ms


#: CGStats Counter fields whose keys are ints (JSON stringifies dict keys,
#: so deserialization must convert them back).
_INT_KEYED_COUNTERS = ("block_size_hist", "age_hist")
_STR_KEYED_COUNTERS = ("static_pins", "objects_pinned")


def result_to_dict(result: RunResult) -> Dict:
    """Flatten a :class:`RunResult` to JSON-serializable primitives.

    Used by the worker processes of the parallel figure harness and by the
    on-disk result cache; :func:`result_from_dict` is the exact inverse
    (modulo JSON's string dict keys, which it restores).
    """
    cg_stats = None
    if result.cg_stats is not None:
        cg_stats = asdict(result.cg_stats)
        # asdict() rebuilds each Counter as Counter(pair_iterable), which
        # *counts the pairs* instead of reconstructing the mapping — so the
        # Counter fields must be flattened to plain dicts by hand.
        for name in _INT_KEYED_COUNTERS + _STR_KEYED_COUNTERS:
            cg_stats[name] = dict(getattr(result.cg_stats, name))
    return {
        "workload": result.workload,
        "size": result.size,
        "system": result.system,
        "objects_created": result.objects_created,
        "census": dict(result.census),
        "cg_stats": cg_stats,
        "gc_work": asdict(result.gc_work),
        "cost": asdict(result.cost),
        "wall_seconds": result.wall_seconds,
        "ops": result.ops,
        "alloc_search_steps": result.alloc_search_steps,
        "peak_live_words": result.peak_live_words,
        "heap_words": result.heap_words,
        "metrics": result.metrics,
        "params": dict(result.params),
        "latency": result.latency,
    }


def result_from_dict(data: Dict) -> RunResult:
    """Rebuild a :class:`RunResult` from :func:`result_to_dict` output."""
    from .harness.costmodel import CostBreakdown

    cg_stats = None
    if data["cg_stats"] is not None:
        raw = dict(data["cg_stats"])
        for name in _INT_KEYED_COUNTERS:
            raw[name] = Counter({int(k): v for k, v in raw[name].items()})
        for name in _STR_KEYED_COUNTERS:
            raw[name] = Counter(raw[name])
        cg_stats = CGStats(**raw)
    return RunResult(
        workload=data["workload"],
        size=data["size"],
        system=data["system"],
        objects_created=data["objects_created"],
        census=dict(data["census"]),
        cg_stats=cg_stats,
        gc_work=GCWork(**data["gc_work"]),
        cost=CostBreakdown(**data["cost"]),
        wall_seconds=data["wall_seconds"],
        ops=data["ops"],
        alloc_search_steps=data["alloc_search_steps"],
        peak_live_words=data["peak_live_words"],
        heap_words=data["heap_words"],
        metrics=data.get("metrics", {}),
        params=dict(data.get("params") or {}),
        latency=data.get("latency") or {},
    )


# ---------------------------------------------------------------------------
# The facade
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WorkloadSpec:
    """A workload named together with its parameter bindings.

    The parameter-carrying replacement for bare name+size pairs: a
    ``RunRequest.workload`` may be a plain name (historical), a live
    :class:`~repro.workloads.base.Workload` instance (process-local), or
    one of these — which, unlike an instance, serializes through
    :func:`request_to_dict` and participates in cache keys.
    """

    name: str
    params: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Dict) -> "WorkloadSpec":
        return cls(name=data["name"], params=dict(data.get("params") or {}))


@dataclass
class RunRequest:
    """The explicit form of a :func:`run` call.

    Exactly one construction path exists: ``config`` (when given) is used
    as-is and ``system`` becomes a pure label; otherwise the config is
    built by :func:`config_for` from ``system``/``heap_words``/
    ``gc_period_ops``.  ``faults`` attaches a :class:`repro.faults.FaultPlan`
    either way.

    **Termination policy.**  Batch workloads take the SPEC ``size`` knob
    (defaulting to 1, exactly as before).  Open-ended workloads
    (``Workload.open_ended``) are terminated by ``requests=`` (requests
    served) and optionally capped by ``max_ops=``; passing ``size=`` to
    one instead routes through the workload's ``requests_for_size`` shim,
    so historical ``size=`` call sites keep working bit-identically.
    Passing ``requests=``/``max_ops=`` to a batch workload is an error.
    """

    workload: Union[str, Workload, WorkloadSpec]
    size: Optional[int] = None
    system: str = "cg"
    heap_words: Optional[int] = None
    gc_period_ops: Optional[int] = None
    seed: int = 2000
    tracer: Optional[object] = None
    profile: bool = False
    #: Maintain the per-opcode ``vm.op.*`` histogram (observational; like
    #: ``tracer``/``profile`` it never changes a run's counters).
    count_opcodes: bool = False
    #: Spool a :class:`~repro.obs.heartbeat.LiveSnapshot` every N ops so
    #: ``python -m repro inspect`` can watch the run from another process
    #: (observational: cadence is deterministic, counters are untouched).
    heartbeat_every: Optional[int] = None
    #: Spool directory for heartbeats (default $REPRO_SPOOL or tempdir).
    heartbeat_spool: Optional[str] = None
    faults: Optional[FaultPlan] = None
    config: Optional[RuntimeConfig] = None
    #: Termination policy for open-ended workloads: stop after serving
    #: this many requests (merged into the workload's params).
    requests: Optional[int] = None
    #: Optional op-budget cap for open-ended workloads.
    max_ops: Optional[int] = None
    #: Extra workload parameter bindings, merged over the
    #: :class:`WorkloadSpec` ones (the wire-friendly way to parameterize
    #: a plain string ``workload``).
    params: Optional[Dict] = None
    #: Clear the cross-runtime codegen caches before the run, so it pays
    #: the true fresh-process warmup bill.  The SLA grid's first-request
    #: latency measurements need this: in-process repeats and warm pool
    #: workers would otherwise inherit a warm cache.  Observational —
    #: caches change wall time, never counters.
    cold_start: bool = False

    def resolve_workload(self) -> Workload:
        """Instantiate the workload with its merged, validated params."""
        if isinstance(self.workload, Workload):
            if (self.params or self.requests is not None
                    or self.max_ops is not None):
                raise ValueError(
                    "params/requests/max_ops do not apply to a live "
                    "Workload instance; bind them at construction instead"
                )
            return self.workload
        if isinstance(self.workload, WorkloadSpec):
            name, merged = self.workload.name, dict(self.workload.params)
        else:
            name, merged = self.workload, {}
        merged.update(self.params or {})
        cls = REGISTRY.get(name)
        open_ended = cls is not None and cls.open_ended
        if not open_ended and (self.requests is not None
                               or self.max_ops is not None):
            raise ValueError(
                f"workload {name!r} is a batch workload sized by size=; "
                f"requests=/max_ops= apply only to open-ended workloads"
            )
        if open_ended and self.size is not None:
            if self.requests is not None or "requests" in merged:
                raise ValueError(
                    "pass size= or requests=, not both"
                )
            # Legacy shim: a size knob on an open-ended workload maps to
            # its equivalent request count, bit-identically.
            merged["requests"] = cls.requests_for_size(self.size)
        if self.requests is not None:
            merged["requests"] = self.requests
        if self.max_ops is not None:
            merged["max_ops"] = self.max_ops
        return get_workload(name, self.seed, params=merged)

    def size_label(self, wl: Workload) -> int:
        """The ``RunResult.size`` label: the historical knob for batch
        workloads (default 1), 0 for open-ended runs without one."""
        if self.size is not None:
            return self.size
        return 0 if wl.open_ended else 1

    def build(self) -> "tuple[Workload, RuntimeConfig, int]":
        """Resolve (workload, config, requested heap words).

        The third element is the heap size *asked for* — the historical
        ``RunResult.heap_words`` label, which the nogc systems' config may
        override internally with :data:`BIG_HEAP_WORDS`.
        """
        wl = self.resolve_workload()
        if self.config is not None:
            config = self.config
            heap = config.heap_words
        else:
            heap = (self.heap_words if self.heap_words is not None
                    else wl.heap_words(self.size_label(wl)))
            config = config_for(self.system, heap, self.gc_period_ops)
        if self.tracer is not None:
            config.tracer = self.tracer
        elif config.tracer is None:
            config.tracer = get_active_tracer()
        if self.profile:
            config.profile = True
        if self.count_opcodes:
            config.count_opcodes = True
        if self.heartbeat_every is not None:
            config.heartbeat_every = self.heartbeat_every
            config.heartbeat_spool = self.heartbeat_spool
            # Stamp the cell identity on every snapshot so the fleet view
            # can name runs without guessing.
            config.heartbeat_labels = {
                "workload": wl.name, "size": self.size_label(wl),
                "system": self.system,
            }
        if self.faults is not None:
            config.faults = self.faults
        return wl, config, heap


#: RunRequest fields that cross process boundaries (everything except the
#: live-object ones: ``tracer`` and ``config`` hold unpicklable state and
#: are rejected by :func:`request_to_dict`).
_REQUEST_FIELDS = (
    "workload", "size", "system", "heap_words", "gc_period_ops", "seed",
    "profile", "count_opcodes", "heartbeat_every", "heartbeat_spool",
    "requests", "max_ops", "params", "cold_start",
)


def request_to_dict(request: RunRequest) -> Dict:
    """Flatten a :class:`RunRequest` to JSON-serializable primitives.

    The wire form used by the worker pool and the ``serve`` socket;
    :func:`request_from_dict` is the inverse.  Requests carrying a live
    ``tracer`` or a prebuilt ``config`` are process-local by nature and
    are rejected here — run those through :func:`execute` directly.
    """
    if request.tracer is not None:
        raise ValueError("a RunRequest with a live tracer cannot be "
                         "serialized; run it in-process via execute()")
    if request.config is not None:
        raise ValueError("a RunRequest with a prebuilt config cannot be "
                         "serialized; pass system/heap_words instead")
    if not isinstance(request.workload, (str, WorkloadSpec)):
        raise ValueError("only named workloads serialize; got a "
                         f"{type(request.workload).__name__} instance")
    data = {name: getattr(request, name) for name in _REQUEST_FIELDS}
    if isinstance(request.workload, WorkloadSpec):
        data["workload"] = request.workload.to_dict()
    data["faults"] = (request.faults.to_dict()
                      if request.faults is not None else None)
    return data


def request_from_dict(data: Dict) -> RunRequest:
    """Rebuild a :class:`RunRequest` from :func:`request_to_dict` output."""
    kwargs = {name: data[name] for name in _REQUEST_FIELDS if name in data}
    if isinstance(kwargs.get("workload"), dict):
        kwargs["workload"] = WorkloadSpec.from_dict(kwargs["workload"])
    faults = data.get("faults")
    if faults is not None:
        faults = (faults if isinstance(faults, FaultPlan)
                  else FaultPlan.from_dict(faults))
    kwargs["faults"] = faults
    return RunRequest(**kwargs)


def execute(request: RunRequest) -> RunResult:
    """Run one (workload, size, system) cell and gather its results."""
    from .harness.costmodel import cost_of

    if request.cold_start:
        from .jvm.compiledcode import clear_codegen_caches

        clear_codegen_caches()
    wl, config, heap = request.build()
    size = request.size_label(wl)
    runtime = Runtime(config)
    started = time.perf_counter()
    try:
        wl.execute(runtime, size)
    finally:
        # Even a run shorter than one heartbeat period (or one that dies
        # mid-flight) leaves a terminal snapshot on the spool, so the
        # fleet view can tell "done" from "vanished".
        if runtime.heartbeat is not None:
            runtime.heartbeat.close(runtime)
    wall = time.perf_counter() - started

    if runtime.collector is not None:
        census = runtime.collector.final_census()
        cg_stats = runtime.collector.stats
        objects_created = cg_stats.objects_created
        runtime.check_cg_invariants()
        recycled = runtime.collector.recycle.parked_words
    else:
        live = runtime.heap.live_count()
        census = {
            "popped": 0,
            "static": live,
            "thread": 0,
            "collected_by_msa": runtime.tracing.work.objects_collected,
        }
        cg_stats = None
        objects_created = runtime.heap.objects_created
        recycled = 0
    runtime.heap.check_accounting(recycled)

    registry = collect_runtime_metrics(runtime)
    snapshot = registry.snapshot()
    profiler = runtime.profiler
    latency = ((profiler.request_summary() or {})
               if profiler.enabled else {})
    return RunResult(
        workload=wl.name,
        size=size,
        system=request.system,
        objects_created=objects_created,
        census=census,
        cg_stats=cg_stats,
        gc_work=runtime.tracing.work,
        cost=cost_of(runtime),
        wall_seconds=wall,
        ops=int(snapshot["vm.ops"]),
        alloc_search_steps=int(snapshot["alloc.search_steps"]),
        peak_live_words=int(snapshot["heap.peak_live_words"]),
        heap_words=heap,
        metrics=registry.to_dict(),
        params=dict(wl.params),
        latency=latency,
    )


def run(
    workload: Union[str, Workload, WorkloadSpec],
    size: Optional[int] = None,
    system: str = "cg",
    *,
    heap_words: Optional[int] = None,
    gc_period_ops: Optional[int] = None,
    seed: int = 2000,
    tracer=None,
    profile: bool = False,
    count_opcodes: bool = False,
    heartbeat_every: Optional[int] = None,
    heartbeat_spool: Optional[str] = None,
    faults: Optional[FaultPlan] = None,
    config: Optional[RuntimeConfig] = None,
    requests: Optional[int] = None,
    max_ops: Optional[int] = None,
    params: Optional[Dict] = None,
) -> RunResult:
    """Execute one cell; the public entry point for everything.

    ``size`` is the batch termination knob (default 1 for batch
    workloads); ``requests``/``max_ops`` terminate open-ended workloads
    (requests served / op budget), and ``params`` binds further
    schema-validated workload parameters — or pass a
    :class:`WorkloadSpec` carrying them.  ``tracer`` installs an event
    sink for the run; when omitted, the ambient tracer from
    :func:`repro.obs.tracing_to` (if any) is used.  ``profile`` turns on
    the perf_counter phase timers (and per-request latency attribution
    for request-structured workloads).  ``heartbeat_every`` spools a live
    snapshot every N ops for ``python -m repro inspect``.  ``faults``
    arms a deterministic :class:`~repro.faults.FaultPlan`.  Passing
    ``config`` bypasses :func:`config_for` entirely (``system`` is then
    just the label recorded on the result).
    """
    return execute(RunRequest(
        workload=workload, size=size, system=system, heap_words=heap_words,
        gc_period_ops=gc_period_ops, seed=seed, tracer=tracer,
        profile=profile, count_opcodes=count_opcodes,
        heartbeat_every=heartbeat_every, heartbeat_spool=heartbeat_spool,
        faults=faults, config=config, requests=requests, max_ops=max_ops,
        params=params,
    ))


def run_many(requests, jobs: int = 2, *,
             cell_timeout: Optional[float] = None,
             retries: int = 2) -> "list[RunResult]":
    """Execute a batch of :class:`RunRequest`\\ s on the shared worker pool.

    Results come back in request order.  A request whose cell exhausts
    its retries (worker crash or timeout) raises
    :class:`~repro.faults.QuarantinedCellError` carrying the pool's
    :class:`~repro.faults.FaultReport` — the rest of the batch still
    completes first.  ``jobs=0`` (or 1 with a single request) is the
    degenerate case and runs in-process.
    """
    from .faults import QuarantinedCellError

    requests = list(requests)
    if jobs <= 1 and len(requests) <= 1:
        return [execute(r) for r in requests]
    from .harness.pool import get_shared_pool

    pool = get_shared_pool(max(1, jobs))
    pool_jobs = pool.submit_batch(
        [request_to_dict(r) for r in requests],
        plan=next((r.faults for r in requests if r.faults is not None), None),
        timeout=cell_timeout, retries=retries,
    )
    pool.wait(pool_jobs)
    results = []
    for job in pool_jobs:
        if job.status != "done":
            key = tuple(job.cell_id.split(":"))
            raise QuarantinedCellError(key, job.report)
        results.append(result_from_dict(job.result_dict))
    return results
