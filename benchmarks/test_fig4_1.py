"""Figure 4.1 — percentage of objects collectable, without/with the
section 3.4 optimization (small runs).

Paper's rows (size 1):
    compress 9%/11%, jess 35%/61%, raytrace 98%/98%, db 18%/36%,
    javac 23%/24%, mpegaudio 6%/7%, mtrt 98%/98%, jack 69%/89%.
"""

from repro.harness import figures

from conftest import as_pct, bench_figure

PAPER = {
    "compress": (9, 11),
    "jess": (35, 61),
    "raytrace": (98, 98),
    "db": (18, 36),
    "javac": (23, 24),
    "mpegaudio": (6, 7),
    "mtrt": (98, 98),
    "jack": (69, 89),
}


def test_fig4_1(benchmark):
    table = bench_figure(benchmark, figures.fig4_1, 1)
    print("\n" + table.render())
    for name, (no_opt, with_opt) in PAPER.items():
        row = table.row_for(name)
        assert abs(as_pct(row[4]) - no_opt) <= 12, (name, row[4])
        assert abs(as_pct(row[5]) - with_opt) <= 12, (name, row[5])
        assert as_pct(row[5]) >= as_pct(row[4])
