"""Appendix tables A.5-A.7 — raw repeated timing runs.

The paper lists five raw wall-clock rows per benchmark per size.  Our
simulated cost is deterministic, so variance lives in the wall-clock
column; pytest-benchmark provides the statistics over real repeated runs of
representative benchmarks at each size.
"""

import pytest

from repro.harness import figures
from repro.api import run as run_workload

from conftest import bench_figure


def test_figA_5_small_table(benchmark):
    table = bench_figure(benchmark, figures.figA_5_6_7, 1, rounds=1,
                         repetitions=3)
    print("\n" + table.render())
    # Three repetitions per benchmark, deterministic simulated cost.
    by_bench = {}
    for row in table.rows:
        by_bench.setdefault(row[0], []).append(row[1])
    for name, sims in by_bench.items():
        assert len(sims) == 3
        assert len(set(sims)) == 1, f"{name}: simulated cost must be stable"


@pytest.mark.parametrize("name", ["jess", "raytrace", "jack"])
def test_raw_small_run_wall_clock(benchmark, name):
    """A.5's raw rows: repeated wall-clock measurements, CG system."""
    result = benchmark(run_workload, name, 1, "cg")
    assert result.objects_created > 0


@pytest.mark.parametrize("name", ["jess", "db"])
def test_raw_medium_run_wall_clock(benchmark, name):
    """A.6: medium runs (single round to bound benchmark time)."""
    result = benchmark.pedantic(
        run_workload, args=(name, 10, "cg"), rounds=1, iterations=1
    )
    assert result.objects_created > 0


def test_raw_large_run_wall_clock(benchmark):
    """A.7: one representative large run (db: mid-sized)."""
    result = benchmark.pedantic(
        run_workload, args=("db", 100, "cg"), rounds=1, iterations=1
    )
    assert result.objects_created > 0
