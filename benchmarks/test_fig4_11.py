"""Figure 4.11 — resetting CG structures during traditional collection.

Paper's protocol: force MSA periodically ("every 100,000 JVM instructions",
scaled here), with the section 3.6 reset pass rebuilding the equilive
partition from true reachability.  Claims: most objects that drop out of CG
structures are simply collected by MSA's sweep; a small number become
"less live"; the nonstatic objects barely move.
"""

from repro.harness import figures

from conftest import bench_figure


def test_fig4_11(benchmark):
    table = bench_figure(benchmark, figures.fig4_11, 1)
    print("\n" + table.render())
    cycles = {r[0]: int(r[3]) for r in table.rows}
    less_live = {r[0]: int(r[2]) for r in table.rows}
    collected = {r[0]: int(r[1]) for r in table.rows}

    # The periodic trigger fired for every benchmark.
    assert all(c >= 1 for c in cycles.values())
    # javac is where resetting pays: its stale (table-evicted) symbols are
    # conservative CG pins that the reset pass repairs wholesale.
    assert less_live["javac"] == max(less_live.values())
    assert less_live["javac"] > 100
    # Sweep reclaims some objects CG still held for other benchmarks.
    assert sum(collected.values()) >= 1
