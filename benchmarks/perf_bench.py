#!/usr/bin/env python
"""Wall-clock benchmark entry point (wrapper over ``repro.harness.bench``).

Regenerate the committed baseline from the repo root::

    PYTHONPATH=src python benchmarks/perf_bench.py --out BENCH_3.json

CI runs the quick variant and gates on the committed baseline::

    PYTHONPATH=src python -m repro bench --small --check BENCH_3.json
"""

import sys

from repro.harness.bench import main

if __name__ == "__main__":
    sys.exit(main())
