"""Figure 4.6 — age at death (frame distance from birth to collection).

Paper's claims: javac/jack collect most objects within one or two frames of
birth (jack's peak is distance 1 — tokens returned to their consumer);
raytrace/mtrt collect a majority more than 5 frames past their birth frame.
"""

from repro.harness import figures

from conftest import bench_figure


def test_fig4_6(benchmark):
    table = bench_figure(benchmark, figures.fig4_6, 1)
    print("\n" + table.render())

    def buckets(name):
        row = table.row_for(name)
        return [int(c) for c in row[1:]]

    jack = buckets("jack")
    assert jack[1] == max(jack)  # peak at distance 1
    assert jack[0] + jack[1] > 0.7 * sum(jack)

    javac = buckets("javac")
    assert javac[0] + javac[1] > 0.7 * sum(javac)

    for name in ("raytrace", "mtrt"):
        b = buckets(name)
        past_five = b[6]
        assert past_five > 0.2 * sum(b), (name, b)

    compress = buckets("compress")
    assert compress[6] == 0  # shallow frame structure
