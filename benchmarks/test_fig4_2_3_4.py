"""Figures 4.2/4.3/4.4 — static & thread-shared composition per size.

Paper's qualitative content: compress/db/mpegaudio are static-heavy at
size 1; jess/javac have comparable static and collectable shares; javac is
the only benchmark with a large thread-shared column; larger sizes shift
every benchmark except compress/mpegaudio strongly toward collectable.
"""

import pytest

from repro.harness import figures

from conftest import as_pct, bench_figure


def test_fig4_2_size1(benchmark):
    table = bench_figure(benchmark, figures.fig4_2_3_4, 1)
    print("\n" + table.render())
    static = {r[0]: as_pct(r[2]) for r in table.rows}
    thread = {r[0]: as_pct(r[3]) for r in table.rows}
    assert static["compress"] > 80
    assert static["mpegaudio"] > 80
    assert static["db"] > 55
    assert thread["javac"] > 40
    assert all(v < 5 for k, v in thread.items() if k != "javac")


def test_fig4_3_size10(benchmark):
    table = bench_figure(benchmark, figures.fig4_2_3_4, 10)
    print("\n" + table.render())
    collectable = {r[0]: as_pct(r[1]) for r in table.rows}
    assert collectable["jess"] > 75
    assert collectable["jack"] > 90


def test_fig4_4_size100(benchmark):
    table = bench_figure(benchmark, figures.fig4_2_3_4, 100)
    print("\n" + table.render())
    collectable = {r[0]: as_pct(r[1]) for r in table.rows}
    thread = {r[0]: as_pct(r[3]) for r in table.rows}
    # Large runs: everything except the compute-bound pair is mostly
    # collectable, and javac's collectable share has overtaken its
    # thread-shared share (paper: "almost twice as many").
    for name in ("jess", "raytrace", "db", "jack", "mtrt"):
        assert collectable[name] > 85, name
    assert collectable["javac"] > thread["javac"]
    assert collectable["compress"] < 25
    assert collectable["mpegaudio"] < 25
