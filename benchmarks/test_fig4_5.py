"""Figure 4.5 — distribution of equilive block sizes at collection.

Paper's claims: "Although most blocks contain more than one object, the
majority of blocks do contain three or fewer objects"; jack/jess are
dominated by size-1/size-2 blocks; db's exactly-collectable share is the
lowest (its query results are chained).
"""

from repro.harness import figures

from conftest import as_pct, bench_figure


def test_fig4_5(benchmark):
    table = bench_figure(benchmark, figures.fig4_5, 1)
    print("\n" + table.render())
    for row in table.rows:
        name = row[0]
        blocks = [int(c) for c in row[2:9]]
        total_blocks = sum(blocks)
        if total_blocks == 0:
            continue
        three_or_fewer = sum(blocks[:3])
        assert three_or_fewer >= 0.5 * total_blocks, (name, blocks)
    exact = {r[0]: as_pct(r[9]) for r in table.rows}
    assert exact["db"] == min(exact.values())
    assert exact["jack"] >= 25  # paper: 30%


def test_fig4_5_jack_pairs(benchmark):
    table = bench_figure(benchmark, figures.fig4_5, 1)
    row = table.row_for("jack")
    singles, pairs = int(row[2]), int(row[3])
    # jack's profile: singleton tokens and token-node pairs dominate.
    assert singles + pairs > 0.7 * sum(int(c) for c in row[2:9])
