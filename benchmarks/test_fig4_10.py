"""Figure 4.10 — speedup of CG over the base system across sizes.

Paper's shape: slight slowdowns at sizes 1 and 10 for most benchmarks, then
"a significant jump in size 100" for the allocation-heavy ones (jess 3.18,
javac 2.77, jack 1.98, raytrace 1.71) while compress/db/mpegaudio stay near
parity.  The crossover — where avoided marking overtakes per-store
overhead — is the paper's central performance claim.
"""

from repro.harness import figures

from conftest import bench_figure


def test_fig4_10(benchmark):
    table = bench_figure(benchmark, figures.fig4_10, rounds=1)
    print("\n" + table.render())
    s1 = {r[0]: float(r[1]) for r in table.rows}
    s10 = {r[0]: float(r[2]) for r in table.rows}
    s100 = {r[0]: float(r[3]) for r in table.rows}

    # Who wins at scale (and by a clear margin):
    for name in ("jess", "javac", "jack", "raytrace"):
        assert s100[name] > 1.25, (name, s100[name])
    # Who stays at parity:
    for name in ("compress", "mpegaudio"):
        assert 0.9 <= s100[name] <= 1.1, (name, s100[name])
    assert 0.85 <= s100["db"] <= 1.2

    # Where the crossover falls: large beats small for the winners.
    for name in ("jess", "jack", "raytrace"):
        assert s100[name] > s1[name]
        assert s100[name] > s10[name]

    # Small runs: CG pays its overhead (mostly < 1).
    slower_at_1 = sum(1 for v in s1.values() if v < 1.0)
    assert slower_at_1 >= 4
