"""Appendix A tables A.1-A.4 — static attribution and object breakdowns."""

from repro.harness import figures

from conftest import as_pct, bench_figure


def test_figA_1(benchmark):
    table = bench_figure(benchmark, figures.figA_1, 1)
    print("\n" + table.render())
    shares = {r[0]: as_pct(r[2]) for r in table.rows}
    # Paper A.1: javac 72% of its static set is thread-induced; everyone
    # else is at or near 0 (raytrace/mtrt ~1%).
    assert shares["javac"] > 50
    for name in ("compress", "jess", "db", "mpegaudio", "jack"):
        assert shares[name] <= 2, (name, shares[name])
    assert shares["mtrt"] <= 5


def test_figA_2_small(benchmark):
    table = bench_figure(benchmark, figures.figA_2_3_4, 1)
    print("\n" + table.render())
    for row in table.rows:
        popped, static, thread = (int(c) for c in row[1:])
        assert popped >= 0 and static >= 0 and thread >= 0
    # Paper A.2 orderings: jack pops the most; javac has the largest
    # thread column; compress/mpegaudio are static-dominated.
    popped = {r[0]: int(r[1]) for r in table.rows}
    static = {r[0]: int(r[2]) for r in table.rows}
    thread = {r[0]: int(r[3]) for r in table.rows}
    assert thread["javac"] == max(thread.values())
    assert static["compress"] > popped["compress"]
    assert static["mpegaudio"] > popped["mpegaudio"]
    assert popped["jack"] > static["jack"]


def test_figA_3_medium(benchmark):
    table = bench_figure(benchmark, figures.figA_2_3_4, 10, rounds=1)
    print("\n" + table.render())
    popped = {r[0]: int(r[1]) for r in table.rows}
    static = {r[0]: int(r[2]) for r in table.rows}
    # Paper A.3: medium runs pop far more than they pin for the
    # allocation-heavy benchmarks.
    for name in ("jess", "raytrace", "db", "jack"):
        assert popped[name] > 3 * static[name], name


def test_figA_4_large(benchmark):
    table = bench_figure(benchmark, figures.figA_2_3_4, 100, rounds=1)
    print("\n" + table.render())
    popped = {r[0]: int(r[1]) for r in table.rows}
    thread = {r[0]: int(r[3]) for r in table.rows}
    # Paper A.4: javac large pops almost twice its thread-shared count.
    assert popped["javac"] > 1.5 * thread["javac"]
    # Thread sharing stays negligible for the raytracers even at scale.
    assert thread["mtrt"] < 100
