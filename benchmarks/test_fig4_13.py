"""Figure 4.13 — number of objects recycled (section 3.7), small runs.

Paper's shape: compress, db, and mpegaudio recycle only a small number of
objects; the allocation-heavy benchmarks recycle 10-60%+.
"""

from repro.harness import figures

from conftest import bench_figure


def test_fig4_13(benchmark):
    table = bench_figure(benchmark, figures.fig4_13, 1)
    print("\n" + table.render())
    shares = {r[0]: float(r[2]) for r in table.rows}
    for name in ("compress", "mpegaudio"):
        assert shares[name] < 10, (name, shares[name])
    for name in ("jess", "jack", "raytrace"):
        assert shares[name] > 10, (name, shares[name])
    counts = {r[0]: int(r[1]) for r in table.rows}
    assert counts["jack"] > counts["compress"]
