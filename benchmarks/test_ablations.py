"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these quantify the individual design decisions
on the same workloads:

* handle width (section 3.5): 16-word vs 8-word CG handles;
* the static optimization (section 3.4): collectability and cost;
* union-find efficiency: finds per store stay near-constant (the
  "(nearly) constant amount of work per storage reference" claim);
* CG against the related-work collectors (generational, train) on the
  same workload: marking work comparison.
"""

import pytest

from repro.core.policy import CGPolicy
from repro.harness.costmodel import cost_of
from repro.api import run as run_workload
from repro.jvm.mutator import Mutator
from repro.jvm.runtime import Runtime, RuntimeConfig
from repro.workloads import get_workload


def run_policy(name, policy, size=1, heap=1 << 22, tracing="none"):
    rt = Runtime(RuntimeConfig(heap_words=heap, cg=policy, tracing=tracing))
    get_workload(name).execute(rt, size)
    return rt


def test_ablation_handle_width(benchmark):
    """Section 3.5: the squeezed handle halves CG's per-allocation charge."""

    def run_both():
        wide = run_policy("jack", CGPolicy(handle_words=16))
        squeezed = run_policy("jack", CGPolicy(handle_words=8))
        return cost_of(wide).cg_maintenance, cost_of(squeezed).cg_maintenance

    wide_cost, squeezed_cost = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    assert squeezed_cost < wide_cost
    # Same collectability either way — the width is pure representation.


def test_ablation_static_opt_cost_and_benefit(benchmark):
    """Section 3.4: the optimization collects more and unions less."""

    def run_both():
        with_opt = run_policy("jess", CGPolicy(static_opt=True))
        without = run_policy("jess", CGPolicy(static_opt=False))
        return with_opt, without

    with_opt, without = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert (
        with_opt.collector.stats.objects_popped
        > without.collector.stats.objects_popped
    )
    assert (
        with_opt.collector.stats.contaminations
        < without.collector.stats.contaminations
    )


@pytest.mark.parametrize("name", ["jess", "raytrace", "jack"])
def test_ablation_near_constant_work_per_reference(benchmark, name):
    """Union-find keeps finds-per-store bounded (amortised alpha(n))."""

    def run():
        return run_policy(name, CGPolicy())

    rt = benchmark.pedantic(run, rounds=1, iterations=1)
    stats = rt.collector.stats
    ds = rt.collector.equilive.ds
    references = stats.store_events + stats.areturn_events + 1
    finds_per_ref = ds.finds / references
    assert finds_per_ref < 6.0, finds_per_ref
    # Ranks stay tiny (the thesis observed <= 10 on SPECjvm98).
    assert all(ds.rank_of(r) <= 10 for r in list(ds.roots())[:500])


def test_ablation_cg_avoids_marking_vs_tracers(benchmark):
    """CG's central claim: no marking.  Compare total mark visits on the
    same workload under mark-sweep, generational, and train backups."""

    def run_all():
        out = {}
        for system in ("cg", "jdk", "gen", "train"):
            out[system] = run_workload("jack", 1, system,
                                       heap_words=4000)
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    cg_marks = results["cg"].gc_work.mark_visits
    for other in ("jdk", "gen", "train"):
        assert cg_marks <= results[other].gc_work.mark_visits, other
    # And CG reclaims the bulk of objects without any tracer help.
    assert results["cg"].cg_stats.objects_popped > 0


def test_ablation_paranoid_mode_cost(benchmark):
    """The reproduction-only paranoid probe is expensive — document it."""
    import time

    def run_mode(paranoid):
        start = time.perf_counter()
        rt = Runtime(
            RuntimeConfig(
                heap_words=1 << 20,
                cg=CGPolicy(paranoid=paranoid),
                tracing="marksweep",
            )
        )
        get_workload("jess").execute(rt, 1)
        return time.perf_counter() - start

    def run_both():
        return run_mode(False), run_mode(True)

    fast, slow = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert slow >= fast * 0.5  # sanity: both complete; paranoid not faster by magic


def test_ablation_typed_recycling(benchmark):
    """Chapter 6: by-type recycling turns the linear first-fit into an O(1)
    bucket hit for same-type allocations."""
    from repro.harness.figures import pressured_heap

    def run_both():
        heap = pressured_heap("jess", 1)
        plain = run_workload("jess", 1, "cg-recycle", heap_words=heap)
        typed = run_workload("jess", 1, "cg-recycle-typed", heap_words=heap)
        return plain, typed

    plain, typed = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert typed.cg_stats.recycle_typed_hits > 0
    steps_per_hit_plain = plain.cg_stats.recycle_search_steps / max(
        1, plain.cg_stats.objects_recycled
    )
    steps_per_hit_typed = typed.cg_stats.recycle_search_steps / max(
        1, typed.cg_stats.objects_recycled
    )
    assert steps_per_hit_typed <= steps_per_hit_plain
