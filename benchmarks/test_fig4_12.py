"""Figure 4.12 — recycle timing (section 3.7), small runs.

Paper's claim: "the benefits of recycling objects are almost as good as
predicted.  In general we are within 4% of the original timings, with
speedups happening more often than not."
"""

from repro.harness import figures

from conftest import bench_figure


def test_fig4_12(benchmark):
    table = bench_figure(benchmark, figures.fig4_12, 1)
    print("\n" + table.render())
    speedups = {r[0]: float(r[3]) for r in table.rows}
    for name, s in speedups.items():
        assert 0.9 <= s <= 1.15, (name, s)  # within a few percent
    at_least_par = sum(1 for s in speedups.values() if s >= 1.0)
    assert at_least_par >= 4  # "speedups happening more often than not"
