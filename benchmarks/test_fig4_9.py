"""Figure 4.9 — the large (size-100) runs.

Paper's claims: most benchmarks allocate orders of magnitude more objects;
db and javac flip from 36%/24% collectable (small) to 99%/91%; db's
exactly-collectable share is 0%; compress/mpegaudio barely change.
"""

from repro.harness import figures

from conftest import as_pct, bench_figure


def test_fig4_9(benchmark):
    table = bench_figure(benchmark, figures.fig4_9, rounds=1)
    print("\n" + table.render())
    collectable = {r[0]: as_pct(r[2]) for r in table.rows}
    exact = {r[0]: as_pct(r[3]) for r in table.rows}
    objects = {r[0]: int(r[1]) for r in table.rows}

    assert collectable["db"] > 90       # paper: 99%
    assert collectable["javac"] > 60    # paper: 91%
    assert collectable["raytrace"] > 90
    assert collectable["jack"] > 85     # paper: 90%
    assert collectable["compress"] < 30  # paper: 28%
    assert collectable["mpegaudio"] < 30

    assert exact["db"] == 0             # paper: 0%

    # Allocation explosion for the non-compute-bound benchmarks.
    assert objects["jess"] > 50 * 2912 / 2
    assert objects["compress"] < 1000
