"""Shared benchmark plumbing.

Each benchmark regenerates one of the paper's tables/figures, measures the
wall time of doing so with pytest-benchmark, asserts the headline shape the
paper reports for it, and stashes the rendered table in ``extra_info`` so
``--benchmark-json`` output carries the reproduced data.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.harness import figures


def bench_figure(benchmark, fig_fn, *args, rounds: int = 1, **kwargs):
    """Benchmark a figure generator (cold cache) and return its table."""

    def generate():
        figures.clear_cache()
        return fig_fn(*args, **kwargs)

    table = benchmark.pedantic(generate, rounds=rounds, iterations=1)
    benchmark.extra_info["table"] = table.render()
    return table


@pytest.fixture(autouse=True)
def fresh_cache():
    figures.clear_cache()
    yield


def as_pct(cell: str) -> float:
    return float(cell.rstrip("%"))
