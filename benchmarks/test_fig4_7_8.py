"""Figures 4.7/4.8 — timing, CG vs the JDK base system (sizes 1 and 10).

Paper's shape (size 1): CG is within 10-20% of the base system and usually
slightly slower (speedups 0.79-0.97), with javac the exception (1.11).  The
"overhead-only" column isolates CG maintenance the way section 4.5 does
(both systems with the traditional collector disabled and ample storage):
the paper reports CG within ~10-20% of the base there too.
"""

from repro.harness import figures

from conftest import bench_figure


def check_small_run_shape(table):
    speedups = {r[0]: float(r[3]) for r in table.rows}
    overheads = {r[0]: float(r[4]) for r in table.rows}
    for name, s in speedups.items():
        assert 0.6 <= s <= 1.5, (name, s)
    # javac is the benchmark where CG wins even at small sizes.
    assert speedups["javac"] == max(speedups.values())
    assert speedups["javac"] > 1.0
    # Most benchmarks: CG slightly slower at small sizes.
    slower = [n for n, s in speedups.items() if s < 1.0]
    assert len(slower) >= 4
    # Overhead isolation: CG within ~40% of the base, always <= 1.
    for name, o in overheads.items():
        assert 0.6 <= o <= 1.0, (name, o)


def test_fig4_7_size1(benchmark):
    table = bench_figure(benchmark, figures.fig4_7, 1)
    print("\n" + table.render())
    check_small_run_shape(table)


def test_fig4_8_size10(benchmark):
    table = bench_figure(benchmark, figures.fig4_8)
    print("\n" + table.render())
    speedups = {r[0]: float(r[3]) for r in table.rows}
    # Size 10 is the crossover zone: everything lands near parity.
    for name, s in speedups.items():
        assert 0.7 <= s <= 1.35, (name, s)
